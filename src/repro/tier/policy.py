"""Declarative migration policy + the background migration loop.

:class:`TierPolicy` is the *what*: a small declarative predicate --
age, size, heat ceiling, lot-aware pinning -- deciding whether one file
is demotable.  :class:`TierManager` is the *when*: a background loop
(same start/stop shape as the replica repair loop) that walks the
namespace, asks the policy, and executes demotions through
:meth:`~repro.tier.store.TieredStore.migrate`, at most
``max_per_scan`` per pass so a scan never monopolizes the appliance.

The policy reads the same :class:`~repro.tier.heat.HeatTracker` the
autoscaler does: a file is demoted only when it is old, big enough to
be worth a tape mount, *and* measurably cold -- and never when a pinned
lot holds it (the operator's "this stays on disk" knob).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.nest.storage import DirNode, FileNode, StorageManager
from repro.obs.log import get_logger
from repro.tier.heat import HeatTracker
from repro.tier.store import HOT, TierError, TieredStore

logger = get_logger(__name__)

__all__ = ["TierPolicy", "TierManager", "walk_files"]


def walk_files(storage: StorageManager) -> list[tuple[str, int]]:
    """Every file in the namespace as ``(path, size)``, sorted by path.

    Takes the storage lock for a consistent snapshot; zero-size files
    (including in-flight puts, which have no committed bytes yet) are
    skipped -- there is nothing to move.
    """
    out: list[tuple[str, int]] = []

    def visit(node: DirNode, prefix: str) -> None:
        for name, child in node.children.items():
            path = f"{prefix}/{name}" if prefix else f"/{name}"
            if isinstance(child, DirNode):
                visit(child, path)
            elif isinstance(child, FileNode) and child.size > 0:
                out.append((path, child.size))

    with storage._lock:
        visit(storage.root, "")
    out.sort()
    return out


@dataclass
class TierPolicy:
    """When may a file leave the fast tier?

    A file is demotable when **all** hold:

    * no read for at least ``demote_after`` seconds (files never read
      age from when the scanner first saw them);
    * at least ``min_size`` bytes (tiny files aren't worth a mount);
    * decayed heat at most ``heat_ceiling`` (a file in an active burst
      stays put even if its last read is marginally old);
    * not covered by a pinned lot (when ``respect_pins``).
    """

    demote_after: float = 300.0
    min_size: int = 1
    heat_ceiling: float = 0.5
    respect_pins: bool = True

    def __post_init__(self) -> None:
        if self.demote_after < 0:
            raise ValueError("demote_after must be >= 0")
        if self.min_size < 0:
            raise ValueError("min_size must be >= 0")
        if self.heat_ceiling < 0:
            raise ValueError("heat_ceiling must be >= 0")

    def should_demote(self, *, age: float, size: int, heat: float,
                      pinned: bool) -> bool:
        if self.respect_pins and pinned:
            return False
        if size < self.min_size:
            return False
        if age < self.demote_after:
            return False
        return heat <= self.heat_ceiling

    def describe(self) -> dict[str, Any]:
        return {
            "demote_after": self.demote_after,
            "min_size": self.min_size,
            "heat_ceiling": self.heat_ceiling,
            "respect_pins": self.respect_pins,
        }


class TierManager:
    """Background demotion loop: namespace walk -> policy -> migrate."""

    def __init__(self, storage: StorageManager, tiered: TieredStore,
                 heat: HeatTracker, policy: TierPolicy | None = None, *,
                 max_per_scan: int = 8,
                 clock: Callable[[], float] = time.monotonic,
                 tracer=None, registry=None):
        self.storage = storage
        self.tiered = tiered
        self.heat = heat
        self.policy = policy if policy is not None else TierPolicy()
        self.max_per_scan = max_per_scan
        self.clock = clock
        self.tracer = tracer
        #: when the scanner first saw each path; the age baseline for
        #: files that have never been read.
        self._first_seen: dict[str, float] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.scans = 0
        self.migrated_files = 0
        self.migrated_bytes = 0
        self._m_scans = None
        if registry is not None:
            self._m_scans = registry.counter(
                "tier_scans_total", "Migration-policy scans completed.")
            registry.gauge_callback(
                "tier_candidate_files",
                lambda: float(len(self._first_seen)),
                "Files currently known to the migration scanner.")

    # ------------------------------------------------------------------
    def _pinned(self, path: str) -> bool:
        is_pinned = getattr(self.storage.lots, "is_pinned", None)
        if is_pinned is None:
            return False
        return bool(is_pinned(path))

    def candidates(self) -> list[tuple[str, int]]:
        """Demotable files right now, coldest (oldest access) first."""
        now = self.clock()
        files = walk_files(self.storage)
        live = {path for path, _size in files}
        for path in list(self._first_seen):
            if path not in live:
                del self._first_seen[path]
        out: list[tuple[float, str, int]] = []
        for path, size in files:
            if self.tiered.state_of(path) != HOT:
                continue
            first = self._first_seen.setdefault(path, now)
            last = self.heat.last_access(path)
            age = now - (last if last is not None else first)
            if self.policy.should_demote(
                    age=age, size=size, heat=self.heat.heat(path),
                    pinned=self._pinned(path)):
                out.append((age, path, size))
        out.sort(key=lambda item: (-item[0], item[1]))
        return [(path, size) for _age, path, size in out]

    def scan_once(self) -> list[str]:
        """One policy pass; returns the paths demoted this pass."""
        span = (self.tracer.span("tier.scan")
                if self.tracer is not None else None)
        migrated: list[str] = []
        try:
            for path, size in self.candidates()[:self.max_per_scan]:
                try:
                    moved = self.tiered.migrate(path)
                except TierError as exc:
                    # Raced a write/read that changed residency; the
                    # file just stays hot until the next pass.
                    logger.debug("demotion of %s skipped: %s", path, exc)
                    continue
                migrated.append(path)
                self.migrated_files += 1
                self.migrated_bytes += moved
            self.scans += 1
            if self._m_scans is not None:
                self._m_scans.inc()
            if span is not None:
                span.set(migrated=len(migrated))
        except BaseException:
            if span is not None:
                span.end("error")
            raise
        else:
            if span is not None:
                span.end()
        if migrated:
            logger.info("tier scan demoted %d file(s)", len(migrated))
        return migrated

    # ------------------------------------------------------------------
    # background loop (same shape as Replicator.start/stop)
    # ------------------------------------------------------------------
    def start(self, interval: float = 30.0) -> None:
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                try:
                    self.scan_once()
                except Exception:
                    logger.exception("tier scan failed; continuing")

        self._thread = threading.Thread(
            target=loop, name="tier-manager", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def describe(self) -> dict[str, Any]:
        return {
            "policy": self.policy.describe(),
            "scans": self.scans,
            "migrated_files": self.migrated_files,
            "migrated_bytes": self.migrated_bytes,
        }
