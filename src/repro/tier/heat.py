"""Per-file access heat: the demand signal for tiering and autoscaling.

A :class:`HeatTracker` keeps, per path, an exponentially-decayed rate
of reads and of bytes served (half-life ``halflife`` seconds).  Both
the migration policy ("is this file cold enough to demote?") and the
autoscaler ("which files should gain replicas?") read the same
tracker, and future predictive placement (ROADMAP item 3) can too.

The tracker is bounded: at most ``max_files`` paths are kept, and when
the bound is hit the coldest entry is evicted -- an evicted file simply
looks stone cold, which is the right failure mode for both consumers.
Metrics follow the bounded-label convention: only the current top-N
paths get a labeled ``tier_file_heat`` series, everything else is
aggregate.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Optional

__all__ = ["HeatTracker"]


class _Entry:
    """Decayed per-path counters (reads/sec and bytes/sec)."""

    __slots__ = ("reads", "nbytes", "stamp", "last_access")

    def __init__(self, now: float) -> None:
        self.reads = 0.0
        self.nbytes = 0.0
        self.stamp = now
        self.last_access = now

    def decayed(self, now: float, halflife: float) -> float:
        """Read-rate score decayed to ``now`` without mutating."""
        age = max(now - self.stamp, 0.0)
        return self.reads * math.pow(0.5, age / halflife)


class HeatTracker:
    """Bounded EWMA of per-file read traffic."""

    def __init__(self, halflife: float = 30.0, max_files: int = 1024,
                 clock: Callable[[], float] = time.monotonic,
                 registry=None):
        if halflife <= 0:
            raise ValueError("halflife must be > 0")
        if max_files < 1:
            raise ValueError("max_files must be >= 1")
        self.halflife = float(halflife)
        self.max_files = int(max_files)
        self.clock = clock
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}
        self._m_heat = None
        if registry is not None:
            self.register_metrics(registry)

    def register_metrics(self, registry, top_n: int = 8) -> None:
        """Publish heat on ``registry``: a tracked-file gauge plus a
        bounded-label per-path gauge refreshed by :meth:`publish`."""
        registry.gauge_callback(
            "tier_tracked_files",
            lambda: float(len(self._entries)),
            "Paths currently tracked by the access-heat EWMA.")
        self._m_heat = registry.gauge(
            "tier_file_heat",
            "Decayed read rate (reads/halflife) of the hottest files; "
            "bounded to the current top paths.",
            labelnames=("path",), max_series=max(top_n * 2, 8))

    # -- feed --------------------------------------------------------------
    def record(self, path: str, nbytes: int = 0) -> None:
        """One read of ``path`` serving ``nbytes`` bytes."""
        now = self.clock()
        with self._lock:
            entry = self._entries.get(path)
            if entry is None:
                if len(self._entries) >= self.max_files:
                    self._evict_coldest(now)
                entry = _Entry(now)
                self._entries[path] = entry
            age = max(now - entry.stamp, 0.0)
            decay = math.pow(0.5, age / self.halflife)
            entry.reads = entry.reads * decay + 1.0
            entry.nbytes = entry.nbytes * decay + float(max(nbytes, 0))
            entry.stamp = now
            entry.last_access = now

    def _evict_coldest(self, now: float) -> None:
        victim = min(self._entries,
                     key=lambda p: self._entries[p].decayed(now, self.halflife))
        del self._entries[victim]

    # -- read --------------------------------------------------------------
    def heat(self, path: str) -> float:
        """Decayed read count for ``path`` (0.0 when never seen)."""
        now = self.clock()
        with self._lock:
            entry = self._entries.get(path)
            return entry.decayed(now, self.halflife) if entry else 0.0

    def last_access(self, path: str) -> Optional[float]:
        """Clock value of the most recent read, or None if never read."""
        with self._lock:
            entry = self._entries.get(path)
            return entry.last_access if entry else None

    def hottest(self, n: int, prefix: str | None = None) -> list[tuple[str, float]]:
        """Top ``n`` paths by decayed heat (optionally under a prefix),
        hottest first; paths with zero heat are omitted."""
        now = self.clock()
        with self._lock:
            scored = [
                (path, entry.decayed(now, self.halflife))
                for path, entry in self._entries.items()
                if prefix is None or path.startswith(prefix)
            ]
        scored = [(p, h) for p, h in scored if h > 1e-9]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:max(n, 0)]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Every tracked path's decayed heat and bytes rate (JSON-able)."""
        now = self.clock()
        with self._lock:
            return {
                path: {
                    "heat": entry.decayed(now, self.halflife),
                    "bytes": entry.nbytes * math.pow(
                        0.5, max(now - entry.stamp, 0.0) / self.halflife),
                    "last_access": entry.last_access,
                }
                for path, entry in self._entries.items()
            }

    # -- publication -------------------------------------------------------
    def publish(self, top_n: int = 8) -> None:
        """Refresh the bounded per-path heat gauge with the current
        top-N (older series keep their last value until the label set
        recycles; the bound caps total series)."""
        if self._m_heat is None:
            return
        for path, heat in self.hottest(top_n):
            self._m_heat.set(heat, path=path)

    def ad_attributes(self, top_n: int = 4) -> dict[str, Any]:
        """The ClassAd heat block: ``HotFiles`` (hottest paths, hottest
        first) and ``HotFileHeat`` (the leader's decayed read rate), so
        matchmakers and peer autoscalers can see *what* is hot here,
        not just that the appliance is busy."""
        top = self.hottest(top_n)
        self.publish(top_n)
        return {
            "HotFiles": [path for path, _heat in top],
            "HotFileHeat": round(top[0][1], 6) if top else 0.0,
        }
