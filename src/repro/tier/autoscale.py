"""Decentralized demand-driven auto-replication.

Each appliance runs its *own* :class:`AutoScaler`: a loop that reads
the appliance's health monitor and SLO engine -- queue depth, error
rates, request rate, burn-rate degradation -- and, when the appliance
is persistently overloaded, replicates its hottest files (per the
shared :class:`~repro.tier.heat.HeatTracker`) to under-loaded peers
through the existing replica federation.  There is no central
coordinator; saturated nodes spawn copies of what is making them hot,
which is how a fleet absorbs a flash crowd.

Stability knobs, because a fleet of independent scalers can thrash:

* **hysteresis** -- overload must persist for N consecutive ticks
  before anything replicates (one spiky sample does nothing);
* **cooldown** -- after acting, the scaler sits out a grace period so
  the new replicas can start taking load before it re-evaluates;
* **budget** -- at most N replication actions per sliding window,
  fleet-wide sanity even if the overload signal sticks.

Placement of the new copies goes through the placement policy, which
(as of this change) refuses peers advertising ``SloDegraded`` -- an
overloaded node must never dump load onto another struggling node.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Optional

from repro.obs.health import HealthMonitor
from repro.obs.log import get_logger
from repro.replica.replicator import ReplicationError, Replicator
from repro.tier.heat import HeatTracker

logger = get_logger(__name__)

__all__ = ["AutoScaler"]


class AutoScaler:
    """One appliance's overload-driven replication loop."""

    def __init__(
        self,
        name: str,
        health: HealthMonitor,
        heat: HeatTracker,
        replicator: Replicator,
        slo=None,
        *,
        queue_high: float = 4.0,
        error_high: float = 0.05,
        rate_high: float = 50.0,
        max_files: int = 3,
        max_replicas: int = 3,
        budget: int = 6,
        window: float = 60.0,
        cooldown: float = 10.0,
        hysteresis: int = 2,
        prefix: str = "/replicas",
        local_lookup: Callable[[str], Optional[tuple[int, int]]] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer=None,
        registry=None,
    ):
        if hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.name = name
        self.health = health
        self.heat = heat
        self.replicator = replicator
        self.slo = slo
        self.queue_high = float(queue_high)
        self.error_high = float(error_high)
        self.rate_high = float(rate_high)
        self.max_files = int(max_files)
        #: ceiling on copies per logical file -- the scaler adds one
        #: replica per trigger, never past this.
        self.max_replicas = int(max_replicas)
        self.budget = int(budget)
        self.window = float(window)
        self.cooldown = float(cooldown)
        self.hysteresis = int(hysteresis)
        self.prefix = prefix.rstrip("/") + "/"
        #: ``logical -> (size, crc32)`` for files this appliance holds
        #: locally but the catalog does not know about; lets the scaler
        #: seed the catalog before fanning out.  None disables seeding.
        self.local_lookup = local_lookup
        self.clock = clock
        self.tracer = tracer
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._pressure = 0  #: consecutive overloaded ticks
        self._cooling_until = 0.0
        self._actions: deque[float] = deque()  #: action stamps in window
        self._prev_requests: int | None = None
        self._prev_stamp: float | None = None
        self.ticks = 0
        self.triggers = 0
        self.replicas_added = 0
        self._m_ticks = None
        self._m_replications = None
        if registry is not None:
            self.register_metrics(registry)

    def register_metrics(self, registry) -> None:
        self._m_ticks = registry.counter(
            "autoscale_ticks_total",
            "Autoscaler evaluations, by what the tick did.",
            labelnames=("action",))
        self._m_replications = registry.counter(
            "autoscale_replications_total",
            "Replica copies initiated by the autoscaler, by outcome.",
            labelnames=("outcome",))
        registry.gauge_callback(
            "autoscale_pressure",
            lambda: float(self._pressure),
            "Consecutive overloaded autoscaler ticks (hysteresis count).")
        registry.gauge_callback(
            "autoscale_budget_used",
            lambda: float(len(self._actions)),
            "Replication actions consumed in the current budget window.")

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def signals(self) -> dict[str, Any]:
        """The overload signal vector this tick decides on."""
        doc = self.health.snapshot()
        now = self.clock()
        served = int(sum(doc["requests"].values()))
        rate = 0.0
        if self._prev_requests is not None and self._prev_stamp is not None:
            dt = max(now - self._prev_stamp, 1e-9)
            rate = max(served - self._prev_requests, 0) / dt
        self._prev_requests = served
        self._prev_stamp = now
        error_rate = max(doc["error_rates"].values(), default=0.0)
        degraded = bool(self.slo.degraded()) if self.slo is not None else False
        return {
            "queue_depth": float(doc["probes"].get("queue_depth", 0.0)),
            "error_rate": error_rate,
            "request_rate": rate,
            "slo_degraded": degraded,
        }

    def overloaded(self, sig: dict[str, Any]) -> bool:
        return (sig["queue_depth"] >= self.queue_high
                or sig["error_rate"] >= self.error_high
                or sig["request_rate"] >= self.rate_high
                or sig["slo_degraded"])

    # ------------------------------------------------------------------
    # one evaluation
    # ------------------------------------------------------------------
    def tick(self) -> dict[str, Any]:
        """Evaluate once; replicate the hottest files if overload has
        persisted past the hysteresis and the budget allows.  Returns a
        JSON-able report of what the tick saw and did."""
        self.ticks += 1
        now = self.clock()
        sig = self.signals()
        report: dict[str, Any] = {"node": self.name, "signals": sig,
                                  "replicated": []}
        if not self.overloaded(sig):
            self._pressure = 0
            report["action"] = "idle"
        elif (self._pressure + 1) < self.hysteresis:
            self._pressure += 1
            report["action"] = "watching"
        elif now < self._cooling_until:
            self._pressure += 1
            report["action"] = "cooldown"
        elif not self._budget_ok(now):
            self._pressure += 1
            report["action"] = "budget"
        else:
            self._pressure += 1
            report["replicated"] = self._scale_out()
            report["action"] = ("replicated" if report["replicated"]
                                else "no_candidates")
            if report["replicated"]:
                self.triggers += 1
                self._actions.append(now)
                self._cooling_until = now + self.cooldown
        report["pressure"] = self._pressure
        if self._m_ticks is not None:
            self._m_ticks.inc(action=report["action"])
        return report

    def _budget_ok(self, now: float) -> bool:
        while self._actions and self._actions[0] <= now - self.window:
            self._actions.popleft()
        return len(self._actions) < self.budget

    # ------------------------------------------------------------------
    # the action: replicate the hottest files to under-loaded peers
    # ------------------------------------------------------------------
    def hottest_logicals(self) -> list[tuple[str, float]]:
        """The hottest replica-prefix files as ``(logical, heat)``."""
        return [(path[len(self.prefix):], heat)
                for path, heat in self.heat.hottest(self.max_files,
                                                    prefix=self.prefix)
                if "/" not in path[len(self.prefix):]]

    def _ensure_cataloged(self, logical: str) -> bool:
        """Make sure the catalog has a valid source copy of ``logical``
        (seeding this appliance's local copy if it can)."""
        catalog = self.replicator.catalog
        if catalog.valid_locations(logical):
            return True
        if self.local_lookup is None:
            return False
        found = self.local_lookup(logical)
        if found is None:
            return False
        size, crc = found
        path = self.replicator.path_for(logical)
        catalog.register(logical, self.name, path, size=size)
        catalog.mark_valid(logical, self.name, checksum=crc, size=size)
        return True

    def _scale_out(self) -> list[dict[str, Any]]:
        candidates = self.hottest_logicals()
        if not candidates:
            return []
        span = (self.tracer.span("autoscale.scale_out", node=self.name,
                                 candidates=len(candidates))
                if self.tracer is not None else None)
        results: list[dict[str, Any]] = []
        try:
            for logical, file_heat in candidates:
                if not self._ensure_cataloged(logical):
                    continue
                have = len(self.replicator.catalog.valid_locations(logical))
                want = min(have + 1, self.max_replicas)
                if want <= have:
                    continue  # already at ceiling
                try:
                    reports = self.replicator.replicate(logical, want)
                except ReplicationError as exc:
                    logger.warning("autoscale %s: replicate %s failed: %s",
                                   self.name, logical, exc)
                    if self._m_replications is not None:
                        self._m_replications.inc(outcome="error")
                    continue
                added = sum(1 for r in reports if r.ok)
                self.replicas_added += added
                if self._m_replications is not None:
                    for r in reports:
                        self._m_replications.inc(
                            outcome="ok" if r.ok else "error")
                results.append({"logical": logical, "heat": round(file_heat, 3),
                                "added": added,
                                "targets": [r.target for r in reports if r.ok]})
            if span is not None:
                span.set(replicated=len(results))
        except BaseException:
            if span is not None:
                span.end("error")
            raise
        else:
            if span is not None:
                span.end()
        if results:
            logger.info("autoscale %s: replicated %s", self.name,
                        [r["logical"] for r in results])
        return results

    # ------------------------------------------------------------------
    # background loop
    # ------------------------------------------------------------------
    def start(self, interval: float = 2.0) -> "AutoScaler":
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                try:
                    self.tick()
                except Exception:  # noqa: BLE001 - the loop must survive
                    logger.exception("autoscale tick failed; continuing")

        self._thread = threading.Thread(
            target=loop, name=f"autoscale-{self.name}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def describe(self) -> dict[str, Any]:
        return {
            "node": self.name,
            "ticks": self.ticks,
            "triggers": self.triggers,
            "replicas_added": self.replicas_added,
            "pressure": self._pressure,
            "budget_used": len(self._actions),
            "thresholds": {
                "queue_high": self.queue_high,
                "error_high": self.error_high,
                "rate_high": self.rate_high,
            },
        }
