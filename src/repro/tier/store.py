"""Two-level hierarchical storage: fast front tier, slow cold tier.

:class:`TieredStore` implements the :class:`~repro.nest.backends.DataStore`
protocol, so the storage manager (and everything above it) is oblivious
to tiering -- exactly how CASTOR hides tape behind its disk pools.  The
cold backend is any ``DataStore``; :class:`RateLimitedStore` wraps one
with a bandwidth throttle and a per-open mount latency, standing in for
tape or remote object storage the way :class:`~repro.faults.disk.FaultyStore`
stands in for a failing disk.

**Residency** is the per-file state machine::

    HOT --(migrate: journal MIGRATING, copy, journal COLD, drop fast)--> COLD
    COLD --(recall: journal RECALLING, copy, journal HOT, drop cold)--> HOT

Every transition is journaled *before* the bytes move, through the same
durability sink the storage manager uses, so a crash at any point
leaves a record from which :meth:`TieredStore.reconcile` can decide
which tier is authoritative: MIGRATING means the fast copy still is,
RECALLING means the cold copy still is.  Data is therefore never lost
between tiers -- at worst a completed copy is redone.

Reads of COLD files **recall on miss**: the bytes stream cold -> fast
through :func:`repro.nest.io.copy_stream` (pooled buffers, in-stream
CRC) before the read is served from the fast tier.  Writes always land
in the fast tier; a write over a COLD path invalidates the cold copy
only after the new bytes are safely landed.
"""

from __future__ import annotations

import threading
import time
from typing import Any, BinaryIO, Callable, Optional

from repro.nest.backends import DataStore
from repro.nest.io import BufferPool, copy_stream
from repro.obs import spans as _spans
from repro.obs.log import get_logger

logger = get_logger(__name__)

__all__ = ["HOT", "COLD", "MIGRATING", "RECALLING",
           "RateLimitedStore", "TieredStore", "TierError"]

#: Residency states (journaled; strings so records stay JSON-able).
HOT = "hot"
COLD = "cold"
MIGRATING = "migrating"
RECALLING = "recalling"

_STATES = (HOT, COLD, MIGRATING, RECALLING)


class TierError(Exception):
    """A tier transition could not be completed."""


class _ThrottledStream:
    """Wraps a stream so reads/writes pay a bandwidth delay.

    The throttle models a shared slow device: each operation sleeps
    ``nbytes / bandwidth`` (plus the one-time ``latency`` charged at
    open).  Sleeps are capped per call so tests with tiny bandwidths
    stay bounded.
    """

    MAX_SLEEP_PER_CALL = 0.2

    def __init__(self, raw: BinaryIO, bandwidth_bps: float,
                 sleep: Callable[[float], None] = time.sleep):
        self._raw = raw
        self._bandwidth = float(bandwidth_bps)
        self._sleep = sleep

    def _pay(self, nbytes: int) -> None:
        if self._bandwidth > 0 and nbytes > 0:
            self._sleep(min(nbytes / self._bandwidth,
                            self.MAX_SLEEP_PER_CALL))

    def read(self, size: int = -1) -> bytes:
        data = self._raw.read(size)
        self._pay(len(data))
        return data

    def write(self, data) -> int:
        self._pay(len(data))
        return self._raw.write(data)

    def close(self) -> None:
        self._raw.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self._raw, name)


class RateLimitedStore:
    """A ``DataStore`` wrapper standing in for tape / object storage.

    Every opened stream is throttled to ``bandwidth_bps`` and charged
    ``latency`` seconds up front (the mount/seek).  Deliberately the
    same wrapper shape as :class:`~repro.faults.disk.FaultyStore`, so a
    cold tier can be both slow *and* faulty by stacking the two.
    """

    def __init__(self, inner: DataStore, bandwidth_bps: float = 8e6,
                 latency: float = 0.0,
                 sleep: Callable[[float], None] = time.sleep):
        self.inner = inner
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency = float(latency)
        self._sleep = sleep

    def _mount(self) -> None:
        if self.latency > 0:
            self._sleep(self.latency)

    def open_read(self, path: str) -> BinaryIO:
        self._mount()
        return _ThrottledStream(self.inner.open_read(path),
                                self.bandwidth_bps, self._sleep)

    def open_write(self, path: str, append: bool = False) -> BinaryIO:
        self._mount()
        return _ThrottledStream(self.inner.open_write(path, append=append),
                                self.bandwidth_bps, self._sleep)

    def open_update(self, path: str) -> BinaryIO:
        self._mount()
        return _ThrottledStream(self.inner.open_update(path),
                                self.bandwidth_bps, self._sleep)

    def delete(self, path: str) -> None:
        self.inner.delete(path)

    def size(self, path: str) -> int:
        return self.inner.size(path)

    def exists(self, path: str) -> bool:
        exists = getattr(self.inner, "exists", None)
        if exists is not None:
            return exists(path)
        return self.inner.size(path) > 0

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _exists(store, path: str) -> bool:
    exists = getattr(store, "exists", None)
    if exists is not None:
        return bool(exists(path))
    return store.size(path) > 0


class _PromotingWriter:
    """A fast-tier write stream that settles residency on close: the
    path becomes HOT and any cold copy is invalidated -- but only
    *after* the new bytes landed, so a crash mid-write leaves the old
    cold copy authoritative instead of losing the file."""

    def __init__(self, raw: BinaryIO, store: "TieredStore", path: str):
        self._raw = raw
        self._store = store
        self._path = path
        self._settled = False

    def write(self, data) -> int:
        return self._raw.write(data)

    def close(self) -> None:
        self._raw.close()
        if not self._settled:
            self._settled = True
            self._store._promote_written(self._path)

    def flush(self) -> None:
        self._raw.flush()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self._raw, name)


class TieredStore:
    """Fast tier over cold tier with journaled per-file residency."""

    def __init__(self, fast: DataStore, cold: DataStore, *,
                 registry=None, pool: BufferPool | None = None):
        self.fast = fast
        self.cold = cold
        self.pool = pool
        #: path -> residency state; absent means HOT-or-nonexistent
        #: (files never migrated carry no entry, keeping the map and
        #: the journal traffic proportional to *tiered* data).
        self.residency: dict[str, str] = {}
        self._lock = threading.RLock()
        #: durability sink ``(rtype, **fields) -> Any``; bound by
        #: DurabilityManager.recover_into(tier=...)/attach_tier, or
        #: directly by tests.  None journals nothing (memory-only).
        self.journal: Callable[..., Any] | None = None
        #: bytes currently resident in the cold tier (gauge feed).
        self._cold_bytes = 0
        self._m_migrations = None
        self._m_recalls = None
        self._m_migrated_bytes = None
        self._m_recalled_bytes = None
        if registry is not None:
            self.register_metrics(registry)

    def register_metrics(self, registry) -> None:
        """Tier occupancy gauges + migration/recall counters."""
        self._m_migrations = registry.counter(
            "tier_migrations_total",
            "Fast->cold migrations attempted, by outcome.",
            labelnames=("outcome",))
        self._m_recalls = registry.counter(
            "tier_recalls_total",
            "Cold->fast recalls attempted, by outcome.",
            labelnames=("outcome",))
        self._m_migrated_bytes = registry.counter(
            "tier_migrated_bytes_total",
            "Bytes demoted into the cold tier.")
        self._m_recalled_bytes = registry.counter(
            "tier_recalled_bytes_total",
            "Bytes recalled back into the fast tier.")
        registry.gauge_callback(
            "tier_cold_used_bytes", lambda: float(self._cold_bytes),
            "Bytes currently resident in the cold tier.")
        registry.gauge_callback(
            "tier_cold_files",
            lambda: float(sum(1 for s in self.residency.values()
                              if s == COLD)),
            "Files whose authoritative copy is in the cold tier.")

    # ------------------------------------------------------------------
    # residency bookkeeping (journaled)
    # ------------------------------------------------------------------
    def state_of(self, path: str) -> str:
        """Residency of ``path`` (HOT when never tiered)."""
        with self._lock:
            return self.residency.get(path, HOT)

    def _set_state(self, path: str, state: str) -> None:
        """Journal, then apply, one residency transition.  Journal
        first: a crash after the append but before the map update is
        identical (for recovery) to one right after both."""
        if state not in _STATES:
            raise ValueError(f"unknown residency state {state!r}")
        if self.journal is not None:
            self.journal("tier_state", path=path, state=state)
        if state == HOT:
            self.residency.pop(path, None)
        else:
            self.residency[path] = state

    def _drop_state(self, path: str) -> None:
        if path in self.residency or self.journal is not None:
            if self.journal is not None:
                self.journal("tier_drop", path=path)
            self.residency.pop(path, None)

    # ------------------------------------------------------------------
    # DataStore protocol
    # ------------------------------------------------------------------
    def open_read(self, path: str) -> BinaryIO:
        with self._lock:
            state = self.residency.get(path, HOT)
            if state == COLD:
                self.recall(path)
            elif state == RECALLING:
                # A previous recall died mid-copy (live code recalls
                # synchronously under the lock, so this is only ever
                # recovered state): the cold copy is authoritative.
                self._set_state(path, COLD)
                self.recall(path)
            return self.fast.open_read(path)

    def open_write(self, path: str, append: bool = False) -> BinaryIO:
        with self._lock:
            state = self.residency.get(path, HOT)
            if append and state in (COLD, RECALLING):
                # Appending needs the existing bytes in the fast tier.
                self._set_state(path, COLD)
                self.recall(path)
            return _PromotingWriter(
                self.fast.open_write(path, append=append), self, path)

    def open_update(self, path: str) -> BinaryIO:
        with self._lock:
            if self.residency.get(path, HOT) in (COLD, RECALLING):
                self._set_state(path, COLD)
                self.recall(path)
            return self.fast.open_update(path)

    def delete(self, path: str) -> None:
        with self._lock:
            state = self.residency.get(path, HOT)
            if state != HOT:
                self._cold_bytes -= self.cold.size(path)
            self._drop_state(path)
            self.fast.delete(path)
            self.cold.delete(path)

    def size(self, path: str) -> int:
        with self._lock:
            if self.residency.get(path, HOT) in (COLD, RECALLING):
                size = self.cold.size(path)
                if size:
                    return size
            size = self.fast.size(path)
            if size:
                return size
            return self.cold.size(path)

    def exists(self, path: str) -> bool:
        with self._lock:
            return _exists(self.fast, path) or _exists(self.cold, path)

    def sweep_temp(self) -> int:
        """Forward the recovery temp sweep to whichever tiers have one."""
        swept = 0
        for store in (self.fast, self.cold):
            sweep = getattr(store, "sweep_temp", None)
            if sweep is not None:
                swept += sweep()
        return swept

    # ------------------------------------------------------------------
    # tier transitions
    # ------------------------------------------------------------------
    def migrate(self, path: str) -> int:
        """Demote one HOT file to the cold tier; returns bytes moved.

        Journals MIGRATING before the copy and COLD after it, so the
        fast copy stays authoritative until the cold bytes are fully
        landed and verified.  Raises :class:`TierError` if the file is
        not demotable (absent, or already migrating/cold).
        """
        with self._lock:
            if self.residency.get(path, HOT) != HOT:
                raise TierError(f"{path!r} is not HOT")
            if not _exists(self.fast, path):
                raise TierError(f"{path!r} has no fast-tier bytes")
            expected = self.fast.size(path)
            with _spans.maybe_span("tier.migrate", path=path,
                                   nbytes=expected):
                self._set_state(path, MIGRATING)
                try:
                    src = self.fast.open_read(path)
                    dst = self.cold.open_write(path)
                    try:
                        moved, _crc = copy_stream(src, dst, pool=self.pool)
                    finally:
                        src.close()
                        dst.close()
                    if moved != expected or self.cold.size(path) != expected:
                        raise TierError(
                            f"cold copy of {path!r} incomplete: "
                            f"{moved}/{expected}")
                except BaseException:
                    # Crash exceptions must propagate untouched; any
                    # failure reverts to HOT (fast copy never left).
                    self._abort_migrate(path)
                    raise
                self._set_state(path, COLD)
                self.fast.delete(path)
                self._cold_bytes += expected
            if self._m_migrations is not None:
                self._m_migrations.inc(outcome="ok")
                self._m_migrated_bytes.inc(expected)
            return expected

    def _abort_migrate(self, path: str) -> None:
        try:
            self.cold.delete(path)
            self._set_state(path, HOT)
        except OSError:
            pass  # recovery will resolve the MIGRATING record
        if self._m_migrations is not None:
            self._m_migrations.inc(outcome="error")

    def recall(self, path: str) -> int:
        """Promote one COLD file back to the fast tier (recall on miss);
        returns bytes moved.  The cold copy stays authoritative until
        the fast bytes are fully landed (journal order RECALLING ->
        copy -> HOT -> drop cold)."""
        with self._lock:
            if self.residency.get(path) != COLD:
                raise TierError(f"{path!r} is not COLD")
            expected = self.cold.size(path)
            with _spans.maybe_span("tier.recall", path=path,
                                   nbytes=expected):
                self._set_state(path, RECALLING)
                try:
                    src = self.cold.open_read(path)
                    dst = self.fast.open_write(path)
                    try:
                        moved, _crc = copy_stream(src, dst, pool=self.pool)
                    finally:
                        src.close()
                        dst.close()
                    if moved != expected or self.fast.size(path) != expected:
                        raise TierError(
                            f"recall of {path!r} incomplete: "
                            f"{moved}/{expected}")
                except BaseException:
                    try:
                        self.fast.delete(path)
                        self._set_state(path, COLD)
                    except OSError:
                        pass
                    if self._m_recalls is not None:
                        self._m_recalls.inc(outcome="error")
                    raise
                self._set_state(path, HOT)
                self.cold.delete(path)
                self._cold_bytes -= expected
            if self._m_recalls is not None:
                self._m_recalls.inc(outcome="ok")
                self._m_recalled_bytes.inc(expected)
            return expected

    def _promote_written(self, path: str) -> None:
        """A fast-tier write completed: the path is HOT now; drop any
        stale cold copy (called by :class:`_PromotingWriter`)."""
        with self._lock:
            state = self.residency.get(path, HOT)
            if state == HOT and not _exists(self.cold, path):
                return  # plain hot write, nothing tiered: no journal
            self._cold_bytes -= self.cold.size(path)
            self._set_state(path, HOT)
            self.cold.delete(path)

    # ------------------------------------------------------------------
    # durability (snapshot serialization + replay + reconciliation)
    # ------------------------------------------------------------------
    def serialize(self) -> dict[str, Any]:
        """JSON-able residency state for a compacted snapshot."""
        with self._lock:
            return {"residency": dict(self.residency)}

    def restore(self, state: dict[str, Any]) -> None:
        """Replace residency from a snapshot (replay runs after)."""
        with self._lock:
            self.residency.clear()
            for path, st in state.get("residency", {}).items():
                if st in _STATES and st != HOT:
                    self.residency[path] = st

    def apply_record(self, rec: dict[str, Any]) -> bool:
        """Apply one replayed journal record; True when it was ours."""
        rtype = str(rec.get("type", ""))
        if rtype == "tier_state":
            state = rec.get("state")
            path = rec.get("path", "")
            with self._lock:
                if state == HOT:
                    self.residency.pop(path, None)
                elif state in _STATES:
                    self.residency[path] = state
            return True
        if rtype == "tier_drop":
            with self._lock:
                self.residency.pop(rec.get("path", ""), None)
            return True
        return False

    def reconcile(self) -> list[dict[str, Any]]:
        """Resolve in-flight transitions after replay: decide, per
        journaled residency entry, which tier's bytes are authoritative
        and make the world match.

        * MIGRATING: the fast copy is authoritative (COLD was never
          journaled) -- drop any cold partial, revert to HOT;
        * RECALLING: the cold copy is authoritative -- drop any fast
          partial, revert to COLD;
        * COLD with a leftover fast copy (crash between journaling COLD
          and deleting the fast bytes): drop the fast copy;
        * COLD with no cold bytes but fast bytes present (shouldn't
          happen with ordered journaling; tolerated): back to HOT;
        * entries whose bytes are gone everywhere are dropped.

        Rebuilds the cold-occupancy gauge.  Returns one action record
        per adjusted path (recovery-report material).
        """
        actions: list[dict[str, Any]] = []
        with self._lock:
            for path in sorted(self.residency):
                state = self.residency[path]
                in_fast = _exists(self.fast, path)
                in_cold = _exists(self.cold, path)
                if state == MIGRATING:
                    if in_cold:
                        self.cold.delete(path)
                    if in_fast:
                        self.residency.pop(path)
                        actions.append({"path": path, "was": state,
                                        "now": HOT})
                    else:
                        # fast bytes gone too: nothing to serve; the
                        # storage-level reconcile settles the metadata.
                        self.residency.pop(path)
                        actions.append({"path": path, "was": state,
                                        "now": "absent"})
                elif state == RECALLING:
                    if in_cold:
                        if in_fast:
                            self.fast.delete(path)
                        self.residency[path] = COLD
                        actions.append({"path": path, "was": state,
                                        "now": COLD})
                    elif in_fast:
                        self.residency.pop(path)
                        actions.append({"path": path, "was": state,
                                        "now": HOT})
                    else:
                        self.residency.pop(path)
                        actions.append({"path": path, "was": state,
                                        "now": "absent"})
                elif state == COLD:
                    if in_cold:
                        if in_fast:
                            self.fast.delete(path)
                            actions.append({"path": path, "was": state,
                                            "now": COLD})
                    elif in_fast:
                        self.residency.pop(path)
                        actions.append({"path": path, "was": state,
                                        "now": HOT})
                    else:
                        self.residency.pop(path)
                        actions.append({"path": path, "was": state,
                                        "now": "absent"})
            self._cold_bytes = sum(
                self.cold.size(path) for path, st in self.residency.items()
                if st == COLD)
        if actions:
            logger.info("tier reconcile: %d path(s) settled", len(actions))
        return actions
