"""The tiering + autoscaling acceptance demo (CLI ``repro tier demo``).

Two harnesses:

* :func:`run_crash_harness` -- the deterministic half.  A tiered store
  journaling through a real durability manager is killed (simulated
  SIGKILL via :class:`~repro.faults.disk.DiskFaultPlan`) at *every*
  journal boundary of a migrate + recall script; each time, a fresh
  boot must recover the file intact in exactly one tier.  This is the
  "residency survives a mid-migration crash" proof.

* :func:`run_tier_demo` -- the live half.  A small fleet where one
  appliance tiers its storage; three hot files take a skewed flash
  crowd while cold files are demoted and recalled on miss.  The
  overloaded appliance's autoscaler must absorb the crowd by
  replicating the hot files to under-loaded peers with **zero**
  client-visible read errors.

The returned record lands in ``BENCH_tier.json`` next to the other
benchmark trajectories.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.client.chirp import ChirpClient
from repro.durability import DurabilityManager
from repro.faults.disk import DiskFaultPlan, SimulatedCrash
from repro.nest.backends import MemoryStore
from repro.nest.storage import StorageManager
from repro.obs.log import get_logger
from repro.replica.federation import FederatedClient
from repro.replica.fleet import Fleet
from repro.tier.store import COLD, HOT, TieredStore

logger = get_logger(__name__)

__all__ = ["run_crash_harness", "run_tier_demo", "render_tier_status"]


# ---------------------------------------------------------------------------
# deterministic crash harness: migrate/recall under fire
# ---------------------------------------------------------------------------
_PAYLOADS = {
    "/data/alpha": b"A" * 4096,
    "/data/beta": b"B" * 2048,
    "/data/gamma": b"C" * 1024,
}


def _put(storage: StorageManager, path: str, data: bytes) -> None:
    ticket = storage.approve_put("anonymous", path, len(data))
    ticket.stream.write(data)
    ticket.settle(len(data))


def _tier_boot(state_dir: str, fast: MemoryStore, cold: MemoryStore,
               faults: DiskFaultPlan | None = None):
    tiered = TieredStore(fast, cold)
    storage = StorageManager(store=tiered, capacity_bytes=1 << 20)
    manager = DurabilityManager(str(state_dir), fsync=False, faults=faults)
    report = manager.recover_into(storage, tier=tiered)
    return storage, tiered, manager, report


def _tier_workload(storage: StorageManager, tiered: TieredStore) -> None:
    """Puts, demotions, a recall, and a write-over-cold: every tier
    journal record type crosses the journal at least once."""
    storage.mkdir("anonymous", "/data")
    for path, data in _PAYLOADS.items():
        _put(storage, path, data)
    tiered.migrate("/data/alpha")
    tiered.migrate("/data/beta")
    tiered.migrate("/data/gamma")
    # Recall on miss.
    ticket = storage.approve_get("anonymous", "/data/alpha")
    got = bytearray()
    while chunk := ticket.stream.read(4096):
        got += chunk
    assert bytes(got) == _PAYLOADS["/data/alpha"]
    ticket.stream.close()
    # Overwrite a cold file: the new hot bytes must win.
    _put(storage, "/data/beta", _PAYLOADS["/data/beta"] + b"!")


def _workload_records(tmp_dir: str) -> int:
    fast, cold = MemoryStore(), MemoryStore()
    storage, tiered, manager, _ = _tier_boot(f"{tmp_dir}/probe", fast, cold)
    _tier_workload(storage, tiered)
    n = manager.journal.last_seq
    manager.close(snapshot=False)
    return n


def _expected_sizes() -> dict[str, int]:
    sizes = {path: len(data) for path, data in _PAYLOADS.items()}
    sizes["/data/beta"] += 1  # the overwrite appends one byte
    return sizes


def run_crash_harness(tmp_dir: str) -> dict[str, Any]:
    """Kill the tiered appliance at every journal boundary; each boot
    must recover every file intact in exactly one tier.

    Returns ``{"crash_points": n, "survived": bool, "failures": [...]}``.
    """
    total = _workload_records(tmp_dir)
    failures: list[str] = []
    final_sizes = _expected_sizes()
    for k in range(1, total + 1):
        state_dir = f"{tmp_dir}/state{k}"
        fast, cold = MemoryStore(), MemoryStore()
        storage, tiered, manager, _ = _tier_boot(
            state_dir, fast, cold, faults=DiskFaultPlan.crash_at_record(k))
        crashed = False
        try:
            _tier_workload(storage, tiered)
        except SimulatedCrash:
            crashed = True
        finally:
            try:
                manager.journal.close()
            except OSError:
                pass
        if not crashed:
            failures.append(f"point {k}: crash never fired")
            continue
        s2, t2, m2, report = _tier_boot(state_dir, fast, cold)
        # Residency must have settled: only HOT/COLD remain, and every
        # surviving file's bytes are whole in exactly the tier its
        # residency names.
        for path, state in t2.residency.items():
            if state not in (HOT, COLD):
                failures.append(f"point {k}: {path} stuck {state}")
        for path in _PAYLOADS:
            if not t2.exists(path):
                continue  # crashed before this file's put committed
            got = t2.size(path)
            want_now = len(_PAYLOADS[path])
            if got not in (want_now, final_sizes[path]):
                failures.append(
                    f"point {k}: {path} has {got} bytes between tiers")
            state = t2.state_of(path)
            in_fast = t2.fast.exists(path)
            in_cold = t2.cold.exists(path)
            if state == HOT and not in_fast:
                failures.append(f"point {k}: {path} HOT without fast bytes")
            if state == COLD and not in_cold:
                failures.append(f"point {k}: {path} COLD without cold bytes")
            if in_fast and in_cold:
                failures.append(f"point {k}: {path} doubled across tiers")
        m2.close(snapshot=False)
    return {
        "crash_points": total,
        "survived": not failures,
        "failures": failures[:10],
    }


# ---------------------------------------------------------------------------
# live flash-crowd demo
# ---------------------------------------------------------------------------
def run_tier_demo(
    sites: int = 3,
    hot_files: int = 3,
    hot_bytes: int = 48 * 1024,
    cold_files: int = 4,
    cold_bytes: int = 64 * 1024,
    crowd_threads: int = 6,
    crowd_reads: int = 12,
    scale_deadline: float = 20.0,
    tmp_dir: str | None = None,
) -> dict[str, Any]:
    """Flash crowd + concurrent migration/recall, end to end.

    One appliance (``tier-0``) runs hierarchical tiers; every appliance
    runs an autoscaler with deliberately twitchy thresholds.  Three hot
    files take a skewed crowd through the federated client while cold
    files are demoted to the cold tier and read back (recall on miss).
    Success: zero client-visible errors, every hot file replicated to a
    second site, all cold data intact, and (when ``tmp_dir`` is given)
    the crash harness green.
    """
    overrides: dict[str, dict[str, Any]] = {
        "*": {
            # Twitchy autoscaler: two consecutive ticks of >= 8 req/s
            # (or any queueing) trigger a scale-out.
            "autoscale_rate_high": 8.0,
            "autoscale_queue_high": 2.0,
            "autoscale_hysteresis": 2,
            "autoscale_cooldown": 0.5,
            "autoscale_interval": 0.2,
            "autoscale_max_replicas": max(2, sites - 1),
            "heat_halflife": 5.0,
        },
        "tier-0": {
            "tiering": True,
            # The demo demotes by hand (scan_once) for determinism.
            # demote_after=0 makes every file old enough; the heat
            # ceiling is what keeps the crowd's files in the fast tier.
            "tier_scan_interval": 0.0,
            "tier_demote_after": 0.0,
            "tier_heat_ceiling": 0.5,
            "tier_cold_bandwidth": 0.0,
            "heat_halflife": 30.0,
        },
    }
    started = time.perf_counter()
    fleet = Fleet(sites=sites, name_prefix="tier",
                  readvertise_interval=0.2, ad_ttl=5.0,
                  config_overrides=overrides)
    record: dict[str, Any] = {
        "benchmark": "tier_flash_crowd_demo",
        "sites": sites,
        "hot_files": hot_files,
        "hot_bytes": hot_bytes,
        "cold_files": cold_files,
        "cold_bytes": cold_bytes,
    }
    with fleet:
        catalog, replicator, client = fleet.federate(
            target_count=1, policy="load", data_protocol="chirp")
        scalers = [server.attach_autoscaler(replicator)
                   for server in fleet.servers.values()]
        try:
            payloads = {
                f"hot-{i}.dat": bytes([65 + i]) * hot_bytes
                for i in range(hot_files)
            }
            for logical, data in payloads.items():
                replicator.store(logical, data)

            # -- cold data on the tiered appliance -----------------------
            origin = fleet.server("tier-0")
            cold_payloads = {
                f"/colddata/c{i}.dat": bytes([97 + i]) * cold_bytes
                for i in range(cold_files)
            }
            origin.storage.mkdir("anonymous", "/colddata")
            for path, data in cold_payloads.items():
                _put(origin.storage, path, data)

            # Warm the hot files' heat on the origin so the demotion
            # policy (heat ceiling) keeps them in the fast tier while
            # everything genuinely cold goes down.
            host, port = origin.endpoint("chirp")
            warm = ChirpClient(host, port)
            try:
                for logical in payloads:
                    warm.get(f"/replicas/{logical}")
            finally:
                warm.close()

            # -- flash crowd on the hot files ----------------------------
            errors = [0]
            reads = [0]
            lock = threading.Lock()
            hot_names = list(payloads)

            def crowd(seed: int) -> None:
                # One federated client per reader: the client pins one
                # connection per site, so sharing one across threads
                # would interleave protocol frames.
                mine = FederatedClient(
                    catalog, fleet.collector, replicator,
                    credential=fleet.credential, data_protocol="chirp")
                try:
                    for j in range(crowd_reads):
                        logical = hot_names[(seed + j) % len(hot_names)]
                        try:
                            got = mine.read(logical)
                            ok = got == payloads[logical]
                        except Exception:  # noqa: BLE001 - counted below
                            ok = False
                        with lock:
                            reads[0] += 1
                            if not ok:
                                errors[0] += 1
                finally:
                    mine.close()

            threads = [threading.Thread(target=crowd, args=(i,), daemon=True)
                       for i in range(crowd_threads)]
            for t in threads:
                t.start()

            # -- concurrent demotion + recall on miss --------------------
            t0 = time.perf_counter()
            migrated = origin.tier_manager.scan_once()
            migrate_seconds = time.perf_counter() - t0
            migrated_bytes = sum(len(cold_payloads[p]) for p in migrated
                                 if p in cold_payloads)
            recall_errors = 0
            recalled_bytes = 0
            t0 = time.perf_counter()
            chirp = ChirpClient(host, port)
            try:
                for path, data in cold_payloads.items():
                    got = chirp.get(path)
                    recalled_bytes += len(got)
                    if got != data:
                        recall_errors += 1
            finally:
                chirp.close()
            recall_seconds = time.perf_counter() - t0

            for t in threads:
                t.join()

            # -- wait for the autoscalers to absorb the crowd ------------
            deadline = time.monotonic() + scale_deadline
            def spread() -> dict[str, int]:
                return {logical: len(catalog.valid_locations(logical))
                        for logical in payloads}
            while (min(spread().values()) < 2
                   and time.monotonic() < deadline):
                time.sleep(0.1)
            replica_spread = spread()

            # Post-crowd reads must also be clean (served by any holder).
            for logical, data in payloads.items():
                if client.read(logical) != data:
                    errors[0] += 1
                reads[0] += 1

            residency = {path: origin.tiered.state_of(path)
                         for path in cold_payloads}
            elapsed = time.perf_counter() - started
            record.update({
                "reads": reads[0],
                "read_errors": errors[0] + recall_errors,
                "replica_spread": replica_spread,
                "absorbed": min(replica_spread.values()) >= 2,
                "migrated_files": len(migrated),
                "migrated_bytes": migrated_bytes,
                "migrate_mbps": round(
                    migrated_bytes / max(migrate_seconds, 1e-9) / 1e6, 3),
                "recalled_bytes": recalled_bytes,
                "recall_mbps": round(
                    recalled_bytes / max(recall_seconds, 1e-9) / 1e6, 3),
                "cold_residency": residency,
                "autoscalers": {s.name: s.describe() for s in scalers},
                "seconds": round(elapsed, 4),
            })
        finally:
            for scaler in scalers:
                scaler.stop()
    if tmp_dir is not None:
        crash = run_crash_harness(tmp_dir)
        record["crash_points"] = crash["crash_points"]
        record["migration_crash_survived"] = crash["survived"]
        if crash["failures"]:
            record["crash_failures"] = crash["failures"]
    record["ok"] = bool(
        record.get("read_errors", 1) == 0
        and record.get("absorbed", False)
        and record.get("migration_crash_survived", True))
    return record


def render_tier_status(record: dict[str, Any]) -> str:
    """Human-readable summary of a demo record (CLI ``tier status``)."""
    lines = [
        f"flash crowd: {record.get('reads', 0)} reads, "
        f"{record.get('read_errors', '?')} errors",
        f"absorbed: {record.get('absorbed')} "
        f"(spread {record.get('replica_spread', {})})",
        f"migration: {record.get('migrated_files', 0)} file(s), "
        f"{record.get('migrate_mbps', 0)} MB/s down, "
        f"{record.get('recall_mbps', 0)} MB/s back",
        f"cold residency after recall: {record.get('cold_residency', {})}",
    ]
    if "migration_crash_survived" in record:
        lines.append(
            f"crash harness: {record.get('crash_points', 0)} points, "
            f"survived={record['migration_crash_survived']}")
    lines.append(f"ok: {record.get('ok')}")
    return "\n".join(lines)
