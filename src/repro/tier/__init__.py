"""Hierarchical storage tiers + decentralized demand-driven scaling.

The paper pitches the NeST as a *manageable* appliance that adapts to
its environment; this package extends that to load management in two
cooperating halves:

* **tiers** -- :class:`~repro.tier.store.TieredStore` fronts a slow,
  rate-limited cold backend (tape / object storage stand-in) with the
  fast local store.  Per-file residency (HOT / COLD / MIGRATING /
  RECALLING) is journaled through the durability layer so it survives
  crashes; cold reads recall on miss through the zero-copy path; a
  background :class:`~repro.tier.policy.TierManager` demotes cold data
  under a declarative :class:`~repro.tier.policy.TierPolicy` (age,
  size, heat, lot-aware pinning);
* **autoscaling** -- :class:`~repro.tier.autoscale.AutoScaler` watches
  the appliance's own health and SLO signals, finds its hottest files
  in the :class:`~repro.tier.heat.HeatTracker`, and replicates them to
  under-loaded peers through the existing replica federation -- no
  central coordinator, the CASTOR-meets-flash-crowd shape.
"""

from repro.tier.heat import HeatTracker
from repro.tier.policy import TierManager, TierPolicy
from repro.tier.store import (
    COLD,
    HOT,
    MIGRATING,
    RECALLING,
    RateLimitedStore,
    TieredStore,
)

# AutoScaler is re-exported lazily: importing it eagerly would pull the
# whole replica federation (and through it the server) into every
# ``repro.tier`` import, and the server itself imports the heat tracker.
def __getattr__(name: str):
    if name == "AutoScaler":
        from repro.tier.autoscale import AutoScaler
        return AutoScaler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AutoScaler",
    "HeatTracker",
    "TierManager",
    "TierPolicy",
    "TieredStore",
    "RateLimitedStore",
    "HOT",
    "COLD",
    "MIGRATING",
    "RECALLING",
]
