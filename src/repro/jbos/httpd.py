"""The native HTTP daemon ("Apache" in Fig. 3's JBOS bars)."""

from __future__ import annotations

import socket

from repro.jbos.base import NativeServer
from repro.jbos.store import SimpleStoreError
from repro.protocols import http
from repro.protocols.common import ProtocolError, Response, Status, read_exact


class NativeHttpd(NativeServer):
    """Single-protocol HTTP file server over a :class:`SimpleStore`."""

    protocol = "http"

    def handle(self, conn: socket.socket, addr) -> None:
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        try:
            while True:
                try:
                    request = http.read_request(rfile)
                except ProtocolError:
                    return
                if request is None:
                    return
                keep_alive = request.params.get("keep_alive", False)
                try:
                    self._serve(request, rfile, wfile, keep_alive)
                except SimpleStoreError:
                    http.write_response_head(
                        wfile, Response(Status.NOT_FOUND), keep_alive=keep_alive
                    )
                if not keep_alive:
                    return
        finally:
            wfile.close()
            rfile.close()

    def _serve(self, request, rfile, wfile, keep_alive: bool) -> None:
        from repro.protocols.common import RequestType

        if request.rtype is RequestType.GET:
            data = self.store.read(request.path)
            http.write_response_head(wfile, Response(Status.OK),
                                     content_length=len(data),
                                     keep_alive=keep_alive)
            self.send_all(wfile, data)
        elif request.rtype is RequestType.STAT:
            size = self.store.size(request.path)
            http.write_response_head(wfile, Response(Status.OK),
                                     content_length=size,
                                     keep_alive=keep_alive)
        elif request.rtype is RequestType.PUT:
            body = read_exact(rfile, request.length)
            self.store.write(request.path, body)
            http.write_response_head(wfile, Response(Status.OK),
                                     keep_alive=keep_alive)
        elif request.rtype is RequestType.DELETE:
            self.store.delete(request.path)
            http.write_response_head(wfile, Response(Status.OK),
                                     keep_alive=keep_alive)
        else:
            http.write_response_head(wfile, Response(Status.BAD_REQUEST),
                                     keep_alive=keep_alive)
