"""The flat shared store native JBOS servers export.

A plain thread-safe path -> bytes mapping with a directory set; no
ACLs, no lots, no owners -- a Unix filesystem as a 2002 daemon saw it.
"""

from __future__ import annotations

import threading


class SimpleStoreError(Exception):
    """Path-level failure (missing, exists, not a directory...)."""


class SimpleStore:
    """Thread-safe in-memory file tree shared by a bunch of servers."""

    def __init__(self) -> None:
        self._files: dict[str, bytes] = {}
        self._dirs: set[str] = {"/"}
        self._lock = threading.RLock()

    @staticmethod
    def _norm(path: str) -> str:
        parts = [p for p in path.split("/") if p]
        return "/" + "/".join(parts)

    def _parent(self, path: str) -> str:
        return self._norm(path.rsplit("/", 1)[0] or "/")

    # -- files ------------------------------------------------------------
    def read(self, path: str) -> bytes:
        with self._lock:
            path = self._norm(path)
            if path not in self._files:
                raise SimpleStoreError(f"no such file {path}")
            return self._files[path]

    def write(self, path: str, data: bytes) -> None:
        with self._lock:
            path = self._norm(path)
            if self._parent(path) not in self._dirs:
                raise SimpleStoreError(f"no such directory {self._parent(path)}")
            if path in self._dirs:
                raise SimpleStoreError(f"{path} is a directory")
            self._files[path] = bytes(data)

    def write_at(self, path: str, offset: int, data: bytes) -> int:
        """Block-granular write (for nfsd); returns the new size."""
        with self._lock:
            path = self._norm(path)
            current = bytearray(self._files.get(path, b""))
            if offset + len(data) > len(current):
                current.extend(b"\x00" * (offset + len(data) - len(current)))
            current[offset:offset + len(data)] = data
            self._files[path] = bytes(current)
            return len(current)

    def delete(self, path: str) -> None:
        with self._lock:
            path = self._norm(path)
            if path not in self._files:
                raise SimpleStoreError(f"no such file {path}")
            del self._files[path]

    def size(self, path: str) -> int:
        with self._lock:
            path = self._norm(path)
            if path in self._dirs:
                return 0
            if path not in self._files:
                raise SimpleStoreError(f"no such file {path}")
            return len(self._files[path])

    def exists(self, path: str) -> bool:
        with self._lock:
            path = self._norm(path)
            return path in self._files or path in self._dirs

    def is_dir(self, path: str) -> bool:
        with self._lock:
            return self._norm(path) in self._dirs

    # -- directories --------------------------------------------------------
    def mkdir(self, path: str) -> None:
        with self._lock:
            path = self._norm(path)
            if path in self._dirs or path in self._files:
                raise SimpleStoreError(f"{path} exists")
            if self._parent(path) not in self._dirs:
                raise SimpleStoreError(f"no such directory {self._parent(path)}")
            self._dirs.add(path)

    def rmdir(self, path: str) -> None:
        with self._lock:
            path = self._norm(path)
            if path == "/":
                raise SimpleStoreError("cannot remove root")
            if path not in self._dirs:
                raise SimpleStoreError(f"no such directory {path}")
            if self.listdir(path):
                raise SimpleStoreError(f"{path} not empty")
            self._dirs.discard(path)

    def listdir(self, path: str) -> list[tuple[str, str, int]]:
        """(name, type, size) triples for one directory."""
        with self._lock:
            path = self._norm(path)
            if path not in self._dirs:
                raise SimpleStoreError(f"no such directory {path}")
            prefix = path.rstrip("/") + "/"
            out = []
            for d in self._dirs:
                if d != path and d.startswith(prefix) and "/" not in d[len(prefix):]:
                    out.append((d[len(prefix):], "dir", 0))
            for f, data in self._files.items():
                if f.startswith(prefix) and "/" not in f[len(prefix):]:
                    out.append((f[len(prefix):], "file", len(data)))
            return sorted(out)
