"""Run the bunch: one native server per protocol over one shared store."""

from __future__ import annotations

from repro.jbos.chirpd import NativeChirpd
from repro.jbos.ftpd import NativeFtpd
from repro.jbos.gridftpd import NativeGridFtpd
from repro.jbos.httpd import NativeHttpd
from repro.jbos.nfsd import NativeNfsd
from repro.jbos.store import SimpleStore
from repro.jbos.throttle import Throttle
from repro.nest.auth import CertificateAuthority

_SERVER_CLASSES = {
    "chirp": NativeChirpd,
    "http": NativeHttpd,
    "ftp": NativeFtpd,
    "gridftp": NativeGridFtpd,
    "nfs": NativeNfsd,
}


class JbosManager:
    """Start/stop a bunch of native servers sharing one store.

    The manager exists purely for operator convenience -- it is *not* a
    coordination layer.  The servers stay fully independent, which is
    exactly the property the paper's JBOS comparison isolates.
    """

    def __init__(
        self,
        protocols: tuple[str, ...] = ("chirp", "http", "ftp", "gridftp", "nfs"),
        store: SimpleStore | None = None,
        host: str = "127.0.0.1",
        throttles: dict[str, Throttle] | None = None,
        ca: CertificateAuthority | None = None,
    ):
        self.store = store if store is not None else SimpleStore()
        self.host = host
        self.servers: dict[str, object] = {}
        throttles = throttles or {}
        for proto in protocols:
            cls = _SERVER_CLASSES.get(proto)
            if cls is None:
                raise ValueError(f"no native server for {proto!r}")
            kwargs = dict(store=self.store, host=host,
                          throttle=throttles.get(proto))
            if proto == "gridftp":
                kwargs["ca"] = ca
            self.servers[proto] = cls(**kwargs)

    @property
    def ports(self) -> dict[str, int]:
        """Bound port per protocol (after start)."""
        return {proto: srv.port for proto, srv in self.servers.items()}

    def start(self) -> "JbosManager":
        for server in self.servers.values():
            server.start()
        return self

    def stop(self) -> None:
        for server in self.servers.values():
            server.stop()

    def __enter__(self) -> "JbosManager":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
