"""Apache mod_throttle-style per-server bandwidth limiting.

A token bucket shared by all of one server's connections: each send of
N bytes consumes N tokens, blocking until the bucket refills.  The
paper's point (§4.2): this shapes only the traffic of the one server
that runs it, so a JBOS deployment cannot trade bandwidth *between*
protocols.
"""

from __future__ import annotations

import threading
import time


class Throttle:
    """Token-bucket rate limiter (bytes/second)."""

    def __init__(self, rate_bytes_per_sec: float, burst: float | None = None):
        if rate_bytes_per_sec <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate_bytes_per_sec)
        self.burst = float(burst) if burst is not None else self.rate / 4
        self._tokens = self.burst
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def consume(self, nbytes: int) -> None:
        """Block until ``nbytes`` of budget is available, then spend it."""
        remaining = float(nbytes)
        while remaining > 0:
            with self._lock:
                now = time.monotonic()
                self._tokens = min(
                    self.burst, self._tokens + (now - self._updated) * self.rate
                )
                self._updated = now
                take = min(self._tokens, remaining)
                self._tokens -= take
                remaining -= take
                if remaining <= 0:
                    return
                wait = remaining / self.rate
            time.sleep(min(wait, 0.05))


class Unthrottled:
    """No-op stand-in so servers need no branching."""

    def consume(self, nbytes: int) -> None:
        """Free of charge."""
