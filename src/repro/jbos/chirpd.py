"""A minimal standalone Chirp file server.

Chirp has no "native" third-party implementation -- it is NeST's own
protocol -- so the JBOS bunch carries this bare file server: get/put
and directory operations only, no lots, no ACLs, no authentication.
Its existence makes the single-protocol Chirp comparison in Fig. 3
meaningful.
"""

from __future__ import annotations

import json
import socket
import zlib

from repro.jbos.base import NativeServer
from repro.jbos.store import SimpleStoreError
from repro.protocols import chirp
from repro.protocols.common import (
    ProtocolError,
    RequestType,
    Response,
    Status,
    read_exact,
    read_line,
    write_line,
)


class NativeChirpd(NativeServer):
    """Single-protocol Chirp server over a :class:`SimpleStore`."""

    protocol = "chirp"

    def handle(self, conn: socket.socket, addr) -> None:
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        try:
            while True:
                try:
                    line = read_line(rfile)
                    request = chirp.decode_request(line)
                except ProtocolError:
                    return
                try:
                    if not self._serve(request, rfile, wfile):
                        return
                except SimpleStoreError as exc:
                    write_line(wfile, chirp.encode_response(
                        Response(Status.NOT_FOUND, message=str(exc))))
        finally:
            wfile.close()
            rfile.close()

    def _serve(self, request, rfile, wfile) -> bool:
        store = self.store
        if request.rtype is RequestType.QUIT:
            write_line(wfile, "ok")
            return False
        if request.rtype is RequestType.GET:
            data = store.read(request.path)
            write_line(wfile, chirp.encode_response(Response(Status.OK),
                                                    [str(len(data))]))
            self.send_all(wfile, data)
        elif request.rtype is RequestType.PUT:
            write_line(wfile, "ok")
            data = read_exact(rfile, request.length)
            store.write(request.path, data)
            write_line(wfile, "ok")
        elif request.rtype is RequestType.CHECKSUM:
            data = store.read(request.path)
            write_line(wfile, chirp.encode_response(
                Response(Status.OK),
                [str(zlib.crc32(data) & 0xFFFFFFFF), str(len(data))]))
        elif request.rtype is RequestType.STAT:
            size = store.size(request.path)
            kind = "dir" if store.is_dir(request.path) else "file"
            write_line(wfile, chirp.encode_response(
                Response(Status.OK),
                chirp.encode_stat({"size": size, "type": kind, "owner": ""})))
        elif request.rtype is RequestType.MKDIR:
            store.mkdir(request.path)
            write_line(wfile, "ok")
        elif request.rtype is RequestType.RMDIR:
            store.rmdir(request.path)
            write_line(wfile, "ok")
        elif request.rtype is RequestType.DELETE:
            store.delete(request.path)
            write_line(wfile, "ok")
        elif request.rtype is RequestType.LIST:
            entries = [
                {"name": n, "type": t, "size": s, "owner": ""}
                for n, t, s in store.listdir(request.path)
            ]
            payload = json.dumps(entries).encode()
            write_line(wfile, chirp.encode_response(Response(Status.OK),
                                                    [str(len(payload))]))
            wfile.write(payload)
            wfile.flush()
        else:
            write_line(wfile, chirp.encode_response(
                Response(Status.BAD_REQUEST,
                         message=f"chirpd has no {request.rtype.value}")))
        return True
