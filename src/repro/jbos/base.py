"""Common plumbing for the native single-protocol servers.

Each native server owns a listener and spawns a thread per connection,
pumping bytes *directly* -- no transfer manager, no scheduler, exactly
one protocol.  This base class is intentionally thin: the servers are
meant to be independent daemons, not a framework.
"""

from __future__ import annotations

import socket
import threading

from repro.jbos.store import SimpleStore
from repro.jbos.throttle import Throttle, Unthrottled


class NativeServer:
    """Base: listener + thread-per-connection accept loop."""

    protocol = "base"

    def __init__(
        self,
        store: SimpleStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        throttle: Throttle | None = None,
    ):
        self.store = store if store is not None else SimpleStore()
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.throttle = throttle if throttle is not None else Unthrottled()
        self._listener: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._running = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "NativeServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(32)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running = True
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"jbos-{self.protocol}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            self._listener.close()
        if self._thread is not None:
            self._thread.join(timeout=2)

    def __enter__(self) -> "NativeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- accept loop ----------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._safe_handle, args=(conn, addr),
                name=f"jbos-{self.protocol}-conn", daemon=True,
            ).start()

    def _safe_handle(self, conn: socket.socket, addr) -> None:
        try:
            self.handle(conn, addr)
        except (OSError, ValueError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def handle(self, conn: socket.socket, addr) -> None:  # pragma: no cover
        raise NotImplementedError

    # -- data pumping (direct, throttled) ---------------------------------------
    def send_all(self, wfile, data: bytes, chunk: int = 65536) -> None:
        """Send with the per-server throttle applied."""
        for i in range(0, len(data), chunk):
            piece = data[i:i + chunk]
            self.throttle.consume(len(piece))
            wfile.write(piece)
        wfile.flush()
