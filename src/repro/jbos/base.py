"""Common plumbing for the native single-protocol servers.

Each native server owns a listener and spawns a thread per connection,
pumping bytes *directly* -- no transfer manager, no scheduler, exactly
one protocol.  This base class is intentionally thin: the servers are
meant to be independent daemons, not a framework -- but like the NeST
dispatcher it tracks its live connections, accepts an optional
:class:`~repro.faults.FaultPlan`, and drains gracefully on ``stop``.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.faults import FaultPlan
from repro.jbos.store import SimpleStore
from repro.jbos.throttle import Throttle, Unthrottled
from repro.obs.metrics import global_registry
from repro.protocols.common import ProtocolError


class NativeServer:
    """Base: listener + thread-per-connection accept loop."""

    protocol = "base"

    def __init__(
        self,
        store: SimpleStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        throttle: Throttle | None = None,
        faults: FaultPlan | None = None,
    ):
        self.store = store if store is not None else SimpleStore()
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.throttle = throttle if throttle is not None else Unthrottled()
        self.faults = faults
        self._listener: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._running = False
        #: live connections: socket -> its handler thread.
        self._conn_lock = threading.Lock()
        self._connections: dict[socket.socket, threading.Thread] = {}
        # Native servers are independent daemons with no appliance
        # context, so their counters land on the process registry.
        reg = global_registry()
        self._m_connections = reg.counter(
            "repro_jbos_connections_total",
            "Connections accepted by native single-protocol servers.",
            labelnames=("protocol",))
        self._m_bytes = reg.counter(
            "repro_jbos_bytes_sent_total",
            "Bytes pumped by native servers (direct, unscheduled).",
            labelnames=("protocol",))

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "NativeServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(32)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running = True
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"jbos-{self.protocol}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain_timeout: float = 5.0) -> dict[str, int]:
        """Stop accepting, give live connections ``drain_timeout``
        seconds to finish, then force-close the rest.  Returns
        ``{"drained": 0|1, "forced": n}`` like ``NestServer.stop``.
        """
        self._running = False
        if self._listener is not None:
            self._listener.close()
        if self._thread is not None:
            self._thread.join(timeout=2)

        deadline = time.monotonic() + max(drain_timeout, 0.0)
        while time.monotonic() < deadline:
            with self._conn_lock:
                if not self._connections:
                    break
            time.sleep(0.01)

        with self._conn_lock:
            stragglers = list(self._connections.items())
        for conn, _thread in stragglers:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for conn, thread in stragglers:
            thread.join(timeout=2)
            with self._conn_lock:
                self._connections.pop(conn, None)
        return {"drained": int(not stragglers), "forced": len(stragglers)}

    def active_connections(self) -> int:
        """How many connections are currently being served."""
        with self._conn_lock:
            return len(self._connections)

    def __enter__(self) -> "NativeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- accept loop ----------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            if self.faults is not None:
                wrapped = self.faults.wrap_accept(
                    conn, label=f"jbos-{self.protocol}")
                if wrapped is None:
                    continue  # accept fault: connection already closed
                conn = wrapped
            if not self._running:
                try:
                    conn.close()
                except OSError:
                    pass
                return
            self._m_connections.inc(protocol=self.protocol)
            thread = threading.Thread(
                target=self._safe_handle, args=(conn, addr),
                name=f"jbos-{self.protocol}-conn", daemon=True,
            )
            with self._conn_lock:
                self._connections[conn] = thread
            thread.start()

    def _safe_handle(self, conn: socket.socket, addr) -> None:
        try:
            self.handle(conn, addr)
        except (OSError, ValueError, ProtocolError):
            # A torn-down or misbehaving connection ends its handler
            # quietly; anything else is a real bug and should surface.
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._conn_lock:
                self._connections.pop(conn, None)

    def handle(self, conn: socket.socket, addr) -> None:  # pragma: no cover
        raise NotImplementedError

    # -- data pumping (direct, throttled) ---------------------------------------
    def send_all(self, wfile, data: bytes, chunk: int = 65536) -> None:
        """Send with the per-server throttle applied."""
        for i in range(0, len(data), chunk):
            piece = data[i:i + chunk]
            self.throttle.consume(len(piece))
            wfile.write(piece)
        wfile.flush()
        self._m_bytes.inc(len(data), protocol=self.protocol)
