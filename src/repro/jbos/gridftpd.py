"""The native GridFTP daemon (the Globus wuftpd derivative of 2001)."""

from __future__ import annotations

import base64
import socket

from repro.jbos.ftpd import NativeFtpd, _FtpSession
from repro.jbos.store import SimpleStore, SimpleStoreError
from repro.jbos.throttle import Throttle
from repro.nest.auth import AuthError, CertificateAuthority, GSIContext
from repro.protocols import ftp, gridftp
from repro.protocols.common import ProtocolError


class NativeGridFtpd(NativeFtpd):
    """FTP daemon plus GSI authentication and extended-block mode."""

    protocol = "gridftp"
    greeting = "globus-gridftp (repro) ready"

    def __init__(self, store: SimpleStore | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 throttle: Throttle | None = None,
                 ca: CertificateAuthority | None = None):
        super().__init__(store=store, host=host, port=port, throttle=throttle)
        self.gsi = GSIContext(ca or CertificateAuthority())

    def handle(self, conn: socket.socket, addr) -> None:
        session = _GridFtpSession(self, conn)
        session.run()


class _GridFtpSession(_FtpSession):
    def __init__(self, server: NativeGridFtpd, conn: socket.socket):
        super().__init__(server, conn)
        self.mode = "S"
        self._challenge: bytes | None = None
        self._cert: bytes | None = None

    def dispatch(self, verb: str, arg: str) -> bool:
        if verb == "AUTH":
            self.reply(334, "ADAT must follow")
            return True
        if verb == "ADAT":
            self._adat(arg)
            return True
        if verb == "MODE":
            self.mode = arg.upper() or "S"
            self.reply(200, f"mode {self.mode}")
            return True
        if verb == "OPTS":
            try:
                gridftp.parse_opts_retr(arg)
                self.reply(200, "ok")
            except ProtocolError as exc:
                self.reply(ftp.SYNTAX_ERROR, str(exc))
            return True
        if verb == "RETR" and self.mode == "E":
            self._retr_eblock(self.resolve(arg))
            return True
        if verb == "STOR" and self.mode == "E":
            self._stor_eblock(self.resolve(arg))
            return True
        return super().dispatch(verb, arg)

    def _adat(self, arg: str) -> None:
        try:
            payload = base64.b64decode(arg)
        except ValueError:
            self.reply(ftp.SYNTAX_ERROR, "bad base64")
            return
        if self._challenge is None:
            self._cert = payload
            self._challenge = self.server.gsi.challenge()
            self.reply(ftp.AUTH_CONTINUE,
                       f"ADAT={base64.b64encode(self._challenge).decode()}")
            return
        try:
            subject = self.server.gsi.accept(self._cert, self._challenge,
                                             payload)
            self.reply(ftp.AUTH_OK, f"authenticated {subject}")
        except AuthError as exc:
            self.reply(ftp.NOT_LOGGED_IN, str(exc))
        finally:
            self._challenge = None

    def _retr_eblock(self, path: str) -> None:
        data = self.server.store.read(path)
        self.reply(ftp.OPENING_DATA, "sending eblock")
        conn = self._data_conn()
        out = conn.makefile("wb")
        try:
            block = 256 * 1024
            for offset in range(0, len(data), block):
                payload = data[offset:offset + block]
                self.server.throttle.consume(len(payload))
                gridftp.write_block(out, offset, payload)
            gridftp.write_eod(out, eof=True)
            out.flush()
        finally:
            out.close()
            conn.close()
        self.reply(ftp.TRANSFER_OK, "done")

    def _stor_eblock(self, path: str) -> None:
        self.reply(ftp.OPENING_DATA, "receiving eblock")
        conn = self._data_conn()
        stream = conn.makefile("rb")
        buffer = bytearray()
        try:
            for offset, payload in gridftp.iter_blocks(stream):
                if offset + len(payload) > len(buffer):
                    buffer.extend(b"\x00" * (offset + len(payload) - len(buffer)))
                buffer[offset:offset + len(payload)] = payload
        except ProtocolError:
            self.reply(ftp.ACTION_FAILED, "bad eblock stream")
            return
        finally:
            stream.close()
            conn.close()
        self.server.store.write(path, bytes(buffer))
        self.reply(ftp.TRANSFER_OK, "stored")
