"""JBOS: "Just a Bunch Of Servers" -- the paper's baseline (§3).

The alternative to NeST's single multi-protocol server is to run one
*native* server per protocol side by side: wu-ftpd, Apache, the kernel
nfsd, and the Globus GridFTP server.  This package provides live
stand-ins for those: small, independent, single-protocol servers that
share only a data directory.  Deliberately absent, because the point of
the comparison is their absence:

* no common request interface -- each server parses and serves its own
  wire format directly;
* no shared transfer manager -- each connection pumps its own bytes, so
  nothing can schedule *across* protocols;
* no lots, no ClassAd ACLs, no advertisement.

The one cross-cutting control a JBOS admin does have is Apache-style
per-server bandwidth throttling (:mod:`repro.jbos.throttle`), which the
paper contrasts with NeST's proportional-share scheduling: it "only
applies to the HTTP requests the Apache server processes".
"""

from repro.jbos.store import SimpleStore
from repro.jbos.throttle import Throttle
from repro.jbos.httpd import NativeHttpd
from repro.jbos.ftpd import NativeFtpd
from repro.jbos.gridftpd import NativeGridFtpd
from repro.jbos.nfsd import NativeNfsd
from repro.jbos.chirpd import NativeChirpd
from repro.jbos.manager import JbosManager

__all__ = [
    "SimpleStore",
    "Throttle",
    "NativeHttpd",
    "NativeFtpd",
    "NativeGridFtpd",
    "NativeNfsd",
    "NativeChirpd",
    "JbosManager",
]
