"""The native FTP daemon ("wu-ftpd" in Fig. 3's JBOS bars)."""

from __future__ import annotations

import socket

from repro.jbos.base import NativeServer
from repro.jbos.store import SimpleStoreError
from repro.protocols import ftp
from repro.protocols.common import ProtocolError, read_line, write_line


class NativeFtpd(NativeServer):
    """Single-protocol FTP server over a :class:`SimpleStore`."""

    protocol = "ftp"
    greeting = "wu-ftpd (repro) ready"

    def handle(self, conn: socket.socket, addr) -> None:
        session = _FtpSession(self, conn)
        session.run()


class _FtpSession:
    def __init__(self, server: NativeFtpd, conn: socket.socket):
        self.server = server
        self.conn = conn
        self.rfile = conn.makefile("rb")
        self.wfile = conn.makefile("wb")
        self.cwd = "/"
        self._pasv: socket.socket | None = None
        self._port_target: tuple[str, int] | None = None

    def reply(self, code: int, text: str) -> None:
        write_line(self.wfile, ftp.format_reply(code, text))

    def resolve(self, path: str) -> str:
        if not path.startswith("/"):
            return self.cwd.rstrip("/") + "/" + path
        return path

    def run(self) -> None:
        self.reply(ftp.READY, self.server.greeting)
        while True:
            try:
                line = read_line(self.rfile)
                verb, arg = ftp.parse_command(line)
            except ProtocolError:
                return
            try:
                if not self.dispatch(verb, arg):
                    return
            except SimpleStoreError as exc:
                self.reply(ftp.ACTION_FAILED, str(exc))

    def dispatch(self, verb: str, arg: str) -> bool:
        store = self.server.store
        if verb == "USER":
            self.reply(ftp.NEED_PASSWORD, "anonymous ok")
        elif verb == "PASS":
            self.reply(ftp.LOGGED_IN, "logged in")
        elif verb == "TYPE":
            self.reply(200, "type set")
        elif verb == "NOOP":
            self.reply(200, "ok")
        elif verb == "QUIT":
            self.reply(ftp.GOODBYE, "bye")
            return False
        elif verb == "PWD":
            self.reply(ftp.PATH_CREATED, f'"{self.cwd}"')
        elif verb == "CWD":
            target = self.resolve(arg)
            if not store.is_dir(target):
                self.reply(ftp.ACTION_FAILED, "not a directory")
            else:
                self.cwd = target
                self.reply(ftp.ACTION_OK, "cwd ok")
        elif verb == "MKD":
            store.mkdir(self.resolve(arg))
            self.reply(ftp.PATH_CREATED, f'"{arg}"')
        elif verb == "RMD":
            store.rmdir(self.resolve(arg))
            self.reply(ftp.ACTION_OK, "removed")
        elif verb == "DELE":
            store.delete(self.resolve(arg))
            self.reply(ftp.ACTION_OK, "deleted")
        elif verb == "SIZE":
            self.reply(213, str(store.size(self.resolve(arg))))
        elif verb == "PASV":
            self._open_pasv()
        elif verb == "PORT":
            self._set_port(arg)
        elif verb == "RETR":
            self._retr(self.resolve(arg))
        elif verb == "STOR":
            self._stor(self.resolve(arg))
        elif verb == "LIST":
            self._list(self.resolve(arg) if arg else self.cwd)
        else:
            self.reply(ftp.NOT_IMPLEMENTED, f"{verb}?")
        return True

    # -- data connections ------------------------------------------------------
    def _open_pasv(self) -> None:
        if self._pasv is not None:
            self._pasv.close()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind((self.server.host, 0))
        listener.listen(2)
        self._pasv = listener
        self._port_target = None
        host, port = listener.getsockname()
        write_line(self.wfile, ftp.format_pasv_reply(host, port))

    def _set_port(self, arg: str) -> None:
        try:
            nums = [int(x) for x in arg.split(",")]
            self._port_target = (
                ".".join(map(str, nums[:4])), nums[4] * 256 + nums[5]
            )
        except (ValueError, IndexError):
            self.reply(ftp.SYNTAX_ERROR, "bad PORT")
            return
        if self._pasv is not None:
            self._pasv.close()
            self._pasv = None
        self.reply(200, "PORT ok")

    def _data_conn(self) -> socket.socket:
        if self._pasv is not None:
            self._pasv.settimeout(10)
            conn, _ = self._pasv.accept()
            self._pasv.close()
            self._pasv = None
            return conn
        if self._port_target is not None:
            target, self._port_target = self._port_target, None
            return socket.create_connection(target, timeout=10)
        raise SimpleStoreError("no data connection")

    def _retr(self, path: str) -> None:
        data = self.server.store.read(path)
        self.reply(ftp.OPENING_DATA, "sending")
        conn = self._data_conn()
        out = conn.makefile("wb")
        try:
            self.server.send_all(out, data)
        finally:
            out.close()
            conn.close()
        self.reply(ftp.TRANSFER_OK, "done")

    def _stor(self, path: str) -> None:
        self.reply(ftp.OPENING_DATA, "receiving")
        conn = self._data_conn()
        chunks = []
        with conn:
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        self.server.store.write(path, b"".join(chunks))
        self.reply(ftp.TRANSFER_OK, "stored")

    def _list(self, path: str) -> None:
        entries = self.server.store.listdir(path)
        text = "".join(f"{t:<4} {s:>12} {n}\r\n" for n, t, s in entries).encode()
        self.reply(ftp.OPENING_DATA, "listing")
        conn = self._data_conn()
        try:
            conn.sendall(text)
        finally:
            conn.close()
        self.reply(ftp.TRANSFER_OK, "done")
