"""The native NFS daemon ("Linux nfsd" in Fig. 3's JBOS bars)."""

from __future__ import annotations

import itertools
import socket
import threading

from repro.jbos.base import NativeServer
from repro.jbos.store import SimpleStoreError
from repro.protocols import nfs
from repro.protocols.common import ProtocolError
from repro.protocols.xdr import Packer, Unpacker


class NativeNfsd(NativeServer):
    """Single-protocol NFS server over a :class:`SimpleStore`."""

    protocol = "nfs"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._tokens: dict[int, str] = {1: "/"}
        self._paths: dict[str, int] = {"/": 1}
        self._next_token = itertools.count(2)
        self._fh_lock = threading.Lock()

    def _fh(self, path: str) -> bytes:
        with self._fh_lock:
            token = self._paths.get(path)
            if token is None:
                token = next(self._next_token)
                self._paths[path] = token
                self._tokens[token] = path
            return nfs.make_fhandle(token)

    def _path(self, handle: bytes) -> str:
        with self._fh_lock:
            path = self._tokens.get(nfs.fhandle_token(handle))
        if path is None:
            raise SimpleStoreError("stale handle")
        return path

    def handle(self, conn: socket.socket, addr) -> None:
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        try:
            while True:
                try:
                    record = nfs.read_record(rfile)
                    xid, prog, proc, args = nfs.unpack_call(record)
                except ProtocolError:
                    return
                try:
                    results = self._dispatch(prog, proc, args)
                except (SimpleStoreError, ProtocolError):
                    p = Packer()
                    p.pack_uint(nfs.NFSERR_NOENT)
                    results = p.get_buffer()
                nfs.write_record(wfile, nfs.pack_reply(xid, results))
        finally:
            wfile.close()
            rfile.close()

    def _dispatch(self, prog: int, proc: int, args: Unpacker) -> bytes:
        store = self.store
        p = Packer()
        if prog == nfs.PROG_MOUNT and proc == nfs.MOUNTPROC_MNT:
            dirpath = args.unpack_string() or "/"
            if not store.is_dir(dirpath):
                p.pack_uint(nfs.NFSERR_NOENT)
                return p.get_buffer()
            p.pack_uint(nfs.NFS_OK)
            p.pack_fixed(self._fh(dirpath))
            return p.get_buffer()
        if proc == nfs.PROC_NULL:
            return b""
        if proc == nfs.PROC_GETATTR:
            path = self._path(args.unpack_fixed(nfs.FHSIZE))
            p.pack_uint(nfs.NFS_OK)
            if store.is_dir(path):
                nfs.pack_fattr(p, nfs.NFDIR, 0)
            else:
                nfs.pack_fattr(p, nfs.NFREG, store.size(path))
            return p.get_buffer()
        if proc == nfs.PROC_LOOKUP:
            dirpath = self._path(args.unpack_fixed(nfs.FHSIZE))
            name = args.unpack_string()
            path = dirpath.rstrip("/") + "/" + name
            if not store.exists(path):
                p.pack_uint(nfs.NFSERR_NOENT)
                return p.get_buffer()
            p.pack_uint(nfs.NFS_OK)
            p.pack_fixed(self._fh(path))
            if store.is_dir(path):
                nfs.pack_fattr(p, nfs.NFDIR, 0)
            else:
                nfs.pack_fattr(p, nfs.NFREG, store.size(path))
            return p.get_buffer()
        if proc == nfs.PROC_READ:
            path = self._path(args.unpack_fixed(nfs.FHSIZE))
            offset = args.unpack_hyper()
            count = args.unpack_uint()
            data = store.read(path)
            self.throttle.consume(min(count, nfs.BLOCK_SIZE))
            piece = data[offset:offset + min(count, nfs.BLOCK_SIZE)]
            p.pack_uint(nfs.NFS_OK)
            nfs.pack_fattr(p, nfs.NFREG, len(data))
            p.pack_opaque(piece)
            return p.get_buffer()
        if proc == nfs.PROC_WRITE:
            path = self._path(args.unpack_fixed(nfs.FHSIZE))
            offset = args.unpack_hyper()
            data = args.unpack_opaque()
            size = store.write_at(path, offset, data)
            p.pack_uint(nfs.NFS_OK)
            nfs.pack_fattr(p, nfs.NFREG, size)
            return p.get_buffer()
        if proc == nfs.PROC_CREATE:
            dirpath = self._path(args.unpack_fixed(nfs.FHSIZE))
            name = args.unpack_string()
            path = dirpath.rstrip("/") + "/" + name
            store.write(path, b"")
            p.pack_uint(nfs.NFS_OK)
            p.pack_fixed(self._fh(path))
            nfs.pack_fattr(p, nfs.NFREG, 0)
            return p.get_buffer()
        if proc == nfs.PROC_REMOVE:
            dirpath = self._path(args.unpack_fixed(nfs.FHSIZE))
            store.delete(dirpath.rstrip("/") + "/" + args.unpack_string())
            p.pack_uint(nfs.NFS_OK)
            return p.get_buffer()
        if proc == nfs.PROC_MKDIR:
            dirpath = self._path(args.unpack_fixed(nfs.FHSIZE))
            name = args.unpack_string()
            path = dirpath.rstrip("/") + "/" + name
            store.mkdir(path)
            p.pack_uint(nfs.NFS_OK)
            p.pack_fixed(self._fh(path))
            nfs.pack_fattr(p, nfs.NFDIR, 0)
            return p.get_buffer()
        if proc == nfs.PROC_RMDIR:
            dirpath = self._path(args.unpack_fixed(nfs.FHSIZE))
            store.rmdir(dirpath.rstrip("/") + "/" + args.unpack_string())
            p.pack_uint(nfs.NFS_OK)
            return p.get_buffer()
        if proc == nfs.PROC_READDIR:
            dirpath = self._path(args.unpack_fixed(nfs.FHSIZE))
            entries = store.listdir(dirpath)
            p.pack_uint(nfs.NFS_OK)
            p.pack_uint(len(entries))
            for name, etype, _size in entries:
                p.pack_string(name)
                p.pack_uint(nfs.NFDIR if etype == "dir" else nfs.NFREG)
            return p.get_buffer()
        p.pack_uint(nfs.NFSERR_IO)
        return p.get_buffer()
