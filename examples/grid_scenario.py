#!/usr/bin/env python
"""NeST in the Grid: the paper's Figure 2 scenario, end to end.

Two NeST appliances -- the user's home site ("madison") and a remote
compute site ("argonne") -- plus a discovery collector and a global
execution manager.  The manager:

1. accepts the user's job submission,
2. matchmakes a storage request against the collector, picks argonne,
   and creates a lot there over Chirp,
3. stages input data with third-party GridFTP (madison -> argonne,
   data never passing through the manager),
4. runs the jobs at argonne, where they read inputs and write outputs
   over NFS,
5. stages the outputs home over GridFTP,
6. terminates the lot.

Run:  python examples/grid_scenario.py
"""

from repro.client import ChirpClient
from repro.grid import Collector, ExecutionManager, GridJob
from repro.nest.auth import CertificateAuthority
from repro.nest.config import NestConfig
from repro.nest.server import NestServer


def word_count(inputs: dict[str, bytes]) -> dict[str, bytes]:
    """The 'scientific application': count words per input."""
    text = inputs["corpus.txt"].decode()
    count = len(text.split())
    return {"counts.out": f"words={count}\n".encode()}


def histogram(inputs: dict[str, bytes]) -> dict[str, bytes]:
    """Second job: letter histogram of the same corpus."""
    text = inputs["corpus.txt"].decode().lower()
    lines = [f"{c}={text.count(c)}" for c in "grid"]
    return {"histogram.out": ("\n".join(lines) + "\n").encode()}


def main() -> None:
    ca = CertificateAuthority("Example Grid CA")
    user_cred = ca.issue("/O=ExampleGrid/CN=researcher")

    home_cfg = NestConfig(name="madison")
    # The argonne admin requires lots and pre-created a default lot so
    # local anonymous NFS jobs can write (paper, section 5).
    remote_cfg = NestConfig(
        name="argonne", require_lots=True, lot_enforcement="nest",
        default_anonymous_lot_bytes=100_000_000,
    )

    with NestServer(home_cfg, ca=ca) as home, NestServer(remote_cfg, ca=ca) as remote:
        # The user's input data lives at the home site.
        chirp = ChirpClient(*home.endpoint("chirp"))
        chirp.authenticate(user_cred)
        chirp.mkdir("/home")
        chirp.acl_set("/home", "*", "rl")
        corpus = (b"flexibility manageability performance " * 2000)
        chirp.put("/home/corpus.txt", corpus)
        print(f"[madison] staged corpus.txt ({len(corpus)} bytes)")

        # Both sites publish availability into the discovery system.
        collector = Collector()
        collector.advertise(home.advertisement())
        collector.advertise(remote.advertisement())
        print(f"[collector] {len(collector)} sites advertised")

        # Step 1: the user submits jobs to the global execution manager.
        manager = ExecutionManager(collector, user_cred)
        jobs = [
            GridJob("word-count", inputs=("corpus.txt",),
                    outputs=("counts.out",), compute=word_count),
            GridJob("histogram", inputs=("corpus.txt",),
                    outputs=("histogram.out",), compute=histogram),
        ]
        report = manager.run_scenario(home, jobs)

        print(f"[manager] chose site: {report.site}")
        print(f"[manager] lot created: {report.lot_id}")
        print(f"[manager] staged in:  {report.staged_in}")
        print(f"[manager] jobs run:   {report.jobs_run}")
        print(f"[manager] staged out: {report.staged_out}")
        print(f"[manager] lot terminated: {report.lot_terminated}")

        # The outputs are back at the home site.
        for output in ("counts.out", "histogram.out"):
            data = chirp.get(f"/home/{output}")
            print(f"[madison] {output}: {data.decode().strip()!r}")
        chirp.close()


if __name__ == "__main__":
    main()
