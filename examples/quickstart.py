#!/usr/bin/env python
"""Quickstart: one NeST appliance, five protocols, one file.

Starts a live NeST server on ephemeral localhost ports, stores a file
over Chirp (the native protocol), and reads it back over HTTP, FTP,
GridFTP, and NFS -- the virtual protocol layer in action: one server,
one namespace, many dialects.

Run:  python examples/quickstart.py
"""

from repro.client import (
    ChirpClient,
    FtpClient,
    GridFtpClient,
    HttpClient,
    NfsClient,
)
from repro.nest.config import NestConfig
from repro.nest.server import NestServer


def main() -> None:
    config = NestConfig(name="quickstart-nest")
    with NestServer(config) as server:
        print(f"NeST '{config.name}' is up; protocol ports: {server.ports}")

        # --- store a file over Chirp, authenticated with toy GSI -----
        credential = server.ca.issue("/O=Grid/CN=demo-user")
        chirp = ChirpClient(*server.endpoint("chirp"))
        user = chirp.authenticate(credential)
        print(f"authenticated over Chirp as {user}")

        chirp.mkdir("/demo")
        chirp.acl_set("/demo", "*", "rl")  # world-readable
        payload = b"The Grid needs storage appliances.\n" * 1000
        chirp.put("/demo/manifesto.txt", payload)
        print(f"stored {len(payload)} bytes at /demo/manifesto.txt via Chirp")

        # --- read it back through every other protocol ----------------
        http = HttpClient(*server.endpoint("http"))
        assert http.get("/demo/manifesto.txt") == payload
        print("read back over HTTP   ... ok")
        http.close()

        ftp = FtpClient(*server.endpoint("ftp"))
        assert ftp.retr("/demo/manifesto.txt") == payload
        print("read back over FTP    ... ok")
        ftp.close()

        gftp = GridFtpClient(*server.endpoint("gridftp"), credential=credential)
        gftp.set_parallelism(4)
        assert gftp.retr_parallel("/demo/manifesto.txt") == payload
        print("read back over GridFTP... ok (4 parallel streams)")
        gftp.close()

        nfs = NfsClient(*server.endpoint("nfs"))
        nfs.mount("/")
        assert nfs.read_file("/demo/manifesto.txt") == payload
        print("read back over NFS    ... ok (8 KB block RPCs)")
        nfs.close()

        # --- the appliance describes itself as a ClassAd ---------------
        print("\nThe server's availability advertisement:")
        print(chirp.query())
        chirp.close()


if __name__ == "__main__":
    main()
