#!/usr/bin/env python
"""NeST as an IBP depot: capability-named byte arrays over lots.

The paper plans IBP support (§3) and compares the two storage models
(§8): IBP allocates *byte arrays* named by unguessable capabilities;
NeST guarantees space with *lots*.  This example runs the translation
live: stable allocations ride ACTIVE lots (guaranteed), volatile ones
ride reclaimable lots — kept only until someone else's guarantee needs
the space, exactly the best-effort analogy the paper draws.

Run:  python examples/ibp_depot.py
"""

from repro.client.ibp import IbpClient, IbpError
from repro.nest.config import NestConfig
from repro.nest.server import NestServer
from repro.protocols.ibp import VOLATILE

MB = 1_000_000


def main() -> None:
    config = NestConfig(
        name="ibp-depot",
        protocols=("chirp", "ibp"),
        require_lots=True,
        lot_enforcement="nest",
        capacity_bytes=4 * MB,
    )
    with NestServer(config) as server:
        depot = IbpClient(*server.endpoint("ibp"))
        print(f"IBP depot up at {server.endpoint('ibp')}; "
              f"capacity {config.capacity_bytes} bytes\n")

        # --- a stable allocation: a real space guarantee ---------------
        caps = depot.allocate(1 * MB, duration=3600)
        print("stable allocation granted; capabilities:")
        for kind, cap in caps.items():
            print(f"  {kind:<7} {cap}")
        depot.store(caps["write"], b"precious checkpoint data " * 1000)
        info = depot.probe(caps["manage"])
        print(f"stored {info['used']} of {info['size']} bytes "
              f"(type={info['type']})\n")

        # --- a volatile allocation: space on sufferance -----------------
        vcaps = depot.allocate(2 * MB, duration=3600, atype=VOLATILE)
        depot.store(vcaps["write"], b"scratch" * 100_000)
        print(f"volatile allocation holds "
              f"{depot.probe(vcaps['manage'])['used']} bytes of scratch")
        print(f"depot status: {depot.status()}\n")

        # --- pressure: a new guarantee reclaims volatile data ------------
        big = depot.allocate(int(2.5 * MB), duration=3600)
        print(f"new stable allocation of {int(2.5 * MB)} bytes granted")
        try:
            depot.load(vcaps["read"], nbytes=10)
        except IbpError as exc:
            print(f"volatile scratch is gone, as IBP permits: {exc}")
        data = depot.load(caps["read"], nbytes=25)
        print(f"stable data untouched: {data!r}")

        # --- refcounted teardown ------------------------------------------
        depot.decrement(caps["manage"])
        depot.decrement(big["manage"])
        print(f"\nafter teardown: {depot.status()}")
        depot.close()


if __name__ == "__main__":
    main()
