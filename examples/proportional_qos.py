#!/usr/bin/env python
"""Quality of service: proportional bandwidth shares across protocols.

Reproduces the heart of the paper's Figure 4 on the simulated 2002
testbed: four clients per protocol (Chirp, GridFTP, HTTP, NFS) hammer
one NeST with 10 MB in-cache file requests while the administrator
dials in different proportional shares via the byte-based stride
scheduler -- something no bunch-of-servers deployment can express,
because no single JBOS component sees more than one protocol.

Run:  python examples/proportional_qos.py
"""

from repro.bench.fairness import jains_fairness, proportional_shares
from repro.models.platform import LINUX
from repro.nest.config import NestConfig
from repro.simnest.workload import run_mixed_protocols

PROTOCOLS = ("chirp", "gridftp", "http", "nfs")


def run_policy(label: str, shares: dict[str, float] | None) -> None:
    if shares is None:
        config = NestConfig(scheduling="fcfs")
    else:
        config = NestConfig(scheduling="stride", shares=shares)
    result = run_mixed_protocols(LINUX, "nest", config=config,
                                 protocols=PROTOCOLS)
    total = result.bandwidth_mbps()
    per = [result.bandwidth_mbps(p) for p in PROTOCOLS]
    line = "  ".join(f"{p}={bw:5.1f}" for p, bw in zip(PROTOCOLS, per))
    if shares is None:
        print(f"{label:<22} total={total:5.1f} MB/s  {line}")
        return
    desired = proportional_shares(total, [shares[p] for p in PROTOCOLS])
    fairness = jains_fairness(per, desired)
    print(f"{label:<22} total={total:5.1f} MB/s  {line}  Jain={fairness:.3f}")


def main() -> None:
    print("Four clients per protocol, 10 MB cached files, Linux/GigE model")
    print("(shares are Chirp : GridFTP : HTTP : NFS)\n")
    run_policy("FIFO (no QoS)", None)
    run_policy("equal 1:1:1:1",
               dict(zip(PROTOCOLS, (1.0, 1.0, 1.0, 1.0))))
    run_policy("boost GridFTP 1:2:1:1",
               dict(zip(PROTOCOLS, (1.0, 2.0, 1.0, 1.0))))
    run_policy("tiered 3:1:2:1",
               dict(zip(PROTOCOLS, (3.0, 1.0, 2.0, 1.0))))
    run_policy("boost NFS 1:1:1:4",
               dict(zip(PROTOCOLS, (1.0, 1.0, 1.0, 4.0))))
    print(
        "\nNote the last row: a work-conserving scheduler cannot give NFS\n"
        "a 4x share it cannot use -- block-based NFS is latency-bound, so\n"
        "its fairness index drops, exactly the paper's Fig. 4 observation."
    )


if __name__ == "__main__":
    main()
