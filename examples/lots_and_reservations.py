#!/usr/bin/env python
"""Lots: guaranteed storage space with best-effort afterlife.

Walks the full lot lifecycle on a live NeST (paper, section 5):

* a user reserves space (owner, capacity, duration) over Chirp;
* writes are charged against the lot -- exceeding it is refused
  *before* any data moves, which is what makes the guarantee real;
* when the duration expires the lot turns **best-effort**: the files
  survive until someone else's new lot needs the space;
* renewal can rescue a best-effort lot; reclamation is observable.

Run:  python examples/lots_and_reservations.py
"""

import time

from repro.client import ChirpClient
from repro.client.chirp import ChirpError
from repro.nest.config import NestConfig
from repro.nest.server import NestServer

MB = 1_000_000


def main() -> None:
    config = NestConfig(
        name="reservations-demo",
        require_lots=True,
        lot_enforcement="nest",  # exact per-lot accounting
        capacity_bytes=10 * MB,
    )
    with NestServer(config) as server:
        alice_cred = server.ca.issue("/O=Demo/CN=alice")
        bob_cred = server.ca.issue("/O=Demo/CN=bob")

        alice = ChirpClient(*server.endpoint("chirp"))
        alice.authenticate(alice_cred)
        alice.mkdir("/alice")

        # --- reserve and use space ------------------------------------
        lot = alice.lot_create(capacity=4 * MB, duration=1.5)
        print(f"alice reserved {lot['capacity']} bytes as {lot['lot_id']}")
        alice.put("/alice/dataset", b"a" * (3 * MB))
        print("alice stored a 3 MB dataset inside her lot")

        try:
            alice.put("/alice/too-big", b"x" * (2 * MB))
        except ChirpError as exc:
            print(f"storing 2 MB more is refused up front: {exc}")

        info = alice.lot_stat(lot["lot_id"])
        print(f"lot state: used={info['used']} of {info['capacity']}, "
              f"state={info['state']}")

        # --- expiry: best-effort, data survives -------------------------
        time.sleep(1.6)
        info = alice.lot_stat(lot["lot_id"])
        print(f"\nafter expiry: state={info['state']} "
              f"(files remain: {info['files']})")
        assert alice.get("/alice/dataset")[:1] == b"a"
        print("the dataset is still readable -- best-effort semantics")

        # --- someone else's guarantee reclaims the space ----------------
        bob = ChirpClient(*server.endpoint("chirp"))
        bob.authenticate(bob_cred)
        bob_lot = bob.lot_create(capacity=9 * MB, duration=60)
        print(f"\nbob reserved {bob_lot['capacity']} bytes "
              f"-- alice's best-effort data had to go")
        try:
            alice.get("/alice/dataset")
            print("unexpected: dataset survived")
        except ChirpError as exc:
            print(f"alice's dataset was reclaimed: {exc}")

        # --- renewal would have saved it ---------------------------------
        renewed = bob.lot_renew(bob_lot["lot_id"], duration=120)
        print(f"bob renewed his lot until t+{120}s "
              f"(expires_at={renewed['expires_at']:.0f})")
        bob.close()
        alice.close()


if __name__ == "__main__":
    main()
