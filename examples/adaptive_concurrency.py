#!/usr/bin/env python
"""Adaptive concurrency: one appliance, two very different platforms.

Reproduces the paper's Figure 5 on the simulated substrate.  The same
NeST binary must run well on a Solaris Netra serving tiny cached files
(where an event loop shines -- no thread overheads) and on a Linux
cluster node serving big disk-bound files (where threads shine -- disk
and network overlap).  Rather than asking the administrator to choose,
NeST deals requests to both models, measures, and biases toward the
winner -- paying a visible, bounded cost for the insurance.

Run:  python examples/adaptive_concurrency.py
"""

from repro.bench.fig5 import run_concurrency_workload
from repro.models.platform import LINUX, SOLARIS


def main() -> None:
    print("Solaris Netra, 1 KB in-cache requests (latency matters)")
    for scheme in ("events", "threads", "adaptive"):
        m = run_concurrency_workload(SOLARIS, 1024, scheme, resident=True)
        mix = f"  mix={m.model_mix}" if scheme == "adaptive" else ""
        print(f"  {scheme:<9} avg {m.avg_latency_ms:5.2f} ms/request{mix}")

    print("\nLinux cluster node, 10 MB disk-bound requests (bandwidth matters)")
    for scheme in ("events", "threads", "adaptive"):
        m = run_concurrency_workload(
            LINUX, 10_000_000, scheme, resident=False,
            files_per_client=60, horizon=40.0, warmup=4.0,
        )
        mix = f"  mix={m.model_mix}" if scheme == "adaptive" else ""
        print(f"  {scheme:<9} {m.bandwidth_mbps:5.2f} MB/s{mix}")

    print(
        "\nThe adaptive scheme never has to be told which platform it is\n"
        "on: it lands near the best model on both, and the gap to the\n"
        "winner is the cost of continuously re-checking its choice."
    )


if __name__ == "__main__":
    main()
