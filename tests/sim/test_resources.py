"""Unit tests for DES resources, containers, and stores."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store
from repro.sim.core import SimulationError


class TestResource:
    def test_capacity_one_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def worker(name):
            with res.request() as req:
                yield req
                log.append((env.now, name))
                yield env.timeout(10)

        env.process(worker("a"))
        env.process(worker("b"))
        env.run()
        assert log == [(0.0, "a"), (10.0, "b")]

    def test_capacity_n_parallel(self):
        env = Environment()
        res = Resource(env, capacity=2)
        starts = []

        def worker(name):
            with res.request() as req:
                yield req
                starts.append((env.now, name))
                yield env.timeout(5)

        for n in "abc":
            env.process(worker(n))
        env.run()
        assert starts == [(0.0, "a"), (0.0, "b"), (5.0, "c")]

    def test_counts(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            with res.request() as req:
                yield req
                assert res.count == 1
                yield env.timeout(1)

        def observer():
            req = res.request()
            assert res.queue_length == 1
            yield req
            res.release(req)

        env.process(holder())
        env.process(observer())
        env.run()
        assert res.count == 0 and res.queue_length == 0

    def test_cancel_waiting_request(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def fickle():
            yield env.timeout(1)
            req = res.request()
            req.cancel()
            return "gave up"

        env.process(holder())
        p = env.process(fickle())
        assert env.run(p) == "gave up"

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)


class TestPriorityResource:
    def test_priority_order(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def worker(name, prio):
            with res.request(priority=prio) as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        def spawn():
            with res.request() as req:
                yield req
                env.process(worker("low", 5))
                env.process(worker("high", 1))
                yield env.timeout(1)

        env.process(spawn())
        env.run()
        assert order == ["high", "low"]


class TestContainer:
    def test_put_get(self):
        env = Environment()
        tank = Container(env, capacity=100, init=50)

        def consumer():
            yield tank.get(30)
            assert tank.level == 20

        env.process(consumer())
        env.run()

    def test_get_blocks_until_available(self):
        env = Environment()
        tank = Container(env, capacity=100, init=0)
        when = []

        def consumer():
            yield tank.get(10)
            when.append(env.now)

        def producer():
            yield env.timeout(4)
            yield tank.put(10)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert when == [4.0]

    def test_put_blocks_at_capacity(self):
        env = Environment()
        tank = Container(env, capacity=10, init=10)
        when = []

        def producer():
            yield tank.put(5)
            when.append(env.now)

        def consumer():
            yield env.timeout(3)
            yield tank.get(5)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert when == [3.0]

    def test_bad_init_rejected(self):
        with pytest.raises(SimulationError):
            Container(Environment(), capacity=5, init=10)


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer():
            for item in ("x", "y", "z"):
                yield store.put(item)

        def consumer():
            for _ in range(3):
                got.append((yield store.get()))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == ["x", "y", "z"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        when = []

        def consumer():
            item = yield store.get()
            when.append((env.now, item))

        def producer():
            yield env.timeout(2)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert when == [(2.0, "late")]

    def test_bounded_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        done = []

        def producer():
            yield store.put(1)
            yield store.put(2)
            done.append(env.now)

        def consumer():
            yield env.timeout(5)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert done == [5.0]
        assert len(store) == 1
