"""Determinism regression: the optimized kernel must not change a
single simulated outcome.

``tests/sim/golden_mixed_trace.json`` was captured from the *seed*
kernel (pre-optimization) by running the fig3-style mixed workload and
recording every chunk completion ``(sim_time_repr, protocol, nbytes)``
in order.  Any change to event ordering, timing arithmetic, heap
tie-breaking, timeout pooling, or the fair-share allocation shows up
here as a diverging trace -- ``repr`` of the float times keeps the
comparison bit-exact.

To re-capture the golden file (ONLY when a semantic change is intended
and reviewed):

    PYTHONPATH=src python -c "
    import json
    from repro.perf.workloads import traced_mixed_workload
    json.dump(traced_mixed_workload().to_golden(),
              open('tests/sim/golden_mixed_trace.json', 'w'), indent=2)"
"""

import json
import os

from repro.perf.workloads import traced_mixed_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_mixed_trace.json")


def test_mixed_trace_matches_seed_golden():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        golden = json.load(fh)
    got = traced_mixed_workload().to_golden()
    # Compare the cheap fields first for a readable diff on failure...
    assert got["n_records"] == golden["n_records"]
    assert got["final_bytes"] == golden["final_bytes"]
    assert got["requests"] == golden["requests"]
    assert got["latency_count"] == golden["latency_count"]
    assert got["latency_sum_repr"] == golden["latency_sum_repr"]
    assert got["end_time_repr"] == golden["end_time_repr"]
    assert got["head"] == golden["head"]
    # ...then the digest of the full completion-order trace.
    assert got["trace_sha256"] == golden["trace_sha256"]


def test_trace_is_reproducible_within_session():
    first = traced_mixed_workload(horizon=0.05)
    second = traced_mixed_workload(horizon=0.05)
    assert first.sha256() == second.sha256()
    assert first.final_bytes == second.final_bytes
