"""The kernel's fast paths: timeout pooling, direct resume of
already-fired events, the interrupt stale-target fix, and reprs."""

import pytest

from repro.sim.core import Environment, Interrupt


# ----------------------------------------------------------------------
# timeout free-list pool
# ----------------------------------------------------------------------
def test_timeout_pool_reuses_dead_timeouts():
    env = Environment()

    def ticker():
        for _ in range(10):
            yield env.timeout(1.0)

    env.process(ticker())
    env.run()
    assert env.timeouts_reused > 0
    assert env.timeouts_created + env.timeouts_reused == 10
    # Pooled timeouts must still deliver correct values.
    seen = []

    def valued():
        for i in range(5):
            seen.append((yield env.timeout(1.0, value=i)))

    env.process(valued())
    env.run()
    assert seen == [0, 1, 2, 3, 4]


def test_referenced_timeout_is_not_recycled():
    env = Environment()
    held = []

    def holder():
        t = env.timeout(1.0, value="keep")
        held.append(t)
        yield t

    env.process(holder())
    env.run()
    # The held Timeout survives with its value intact (not reset by the
    # pool) because the external reference blocks recycling.
    assert held[0].value == "keep"
    assert held[0].processed


def test_timeout_chain_matches_sequential_yields():
    """One batched timeout lands at the bit-exact same instant as the
    chain of yields it replaces."""
    delays = [0.0013, 0.00007, 0.1, 3e-9]
    env1 = Environment()
    times1 = []

    def sequential():
        for d in delays:
            yield env1.timeout(d)
        times1.append(env1.now)

    env1.process(sequential())
    env1.run()

    env2 = Environment()
    times2 = []

    def chained():
        yield env2.timeout_chain(delays)
        times2.append(env2.now)

    env2.process(chained())
    env2.run()
    assert repr(times1[0]) == repr(times2[0])


def test_timeout_chain_rejects_negative_delay():
    env = Environment()
    with pytest.raises(Exception):
        env.timeout_chain([0.1, -0.5])


# ----------------------------------------------------------------------
# direct resume of already-processed events
# ----------------------------------------------------------------------
def test_yielding_processed_event_resumes_with_its_value():
    env = Environment()
    fired = env.event()
    fired.succeed("payload")
    env.run()  # fully process the event first
    got = []

    def waiter():
        got.append((yield fired))

    env.process(waiter())
    env.run()
    assert got == ["payload"]
    assert env.direct_resumes >= 1


def test_direct_resume_preserves_order_against_urgent_events():
    """A direct resume must not jump ahead of same-instant work that
    was already scheduled when it was parked."""
    env = Environment()
    fired = env.event()
    fired.succeed()
    env.run()  # fully process the event
    order = []

    def jumper():
        yield fired  # parks a direct resume during its Initialize
        order.append("jumper")

    def steady():
        order.append("steady")
        return
        yield

    # jumper spawns first, so its direct resume is parked while
    # steady's Initialize (an earlier-scheduled heap entry) is due at
    # the same instant: the heap entry must win.
    env.process(jumper())
    env.process(steady())
    env.run()
    assert order == ["steady", "jumper"]


# ----------------------------------------------------------------------
# interrupt: the stale-target hazard
# ----------------------------------------------------------------------
def test_interrupt_while_waiting_on_processed_event_is_single_resume():
    """Seed hazard: a process that yielded an already-processed event
    and is then interrupted before the resume fires must see exactly
    one resume (the Interrupt), not a double resume."""
    env = Environment()
    fired = env.event()
    fired.succeed("v")
    resumes = []

    def victim():
        try:
            resumes.append((yield fired))
        except Interrupt as exc:
            resumes.append(exc)
            yield env.timeout(1.0)
            resumes.append("recovered")

    proc = env.process(victim())

    def attacker():
        proc.interrupt("now")
        return
        yield

    env.process(attacker())
    env.run()
    assert len(resumes) == 2
    assert isinstance(resumes[0], Interrupt)
    assert resumes[1] == "recovered"


def test_interrupt_after_target_processed_still_delivers():
    env = Environment()
    caught = []

    def victim():
        try:
            yield env.timeout(10.0)
        except Interrupt as exc:
            caught.append(exc.cause)

    proc = env.process(victim())

    def attacker():
        yield env.timeout(1.0)
        proc.interrupt("cause")

    env.process(attacker())
    env.run()
    assert caught == ["cause"]


# ----------------------------------------------------------------------
# peek() with pending direct resumes
# ----------------------------------------------------------------------
def test_peek_sees_pending_direct_resume():
    env = Environment()
    fired = env.event()
    fired.succeed()
    env.run()  # fully process the event
    done = []

    def waiter():
        yield fired
        done.append(True)

    env.process(waiter())
    env.step()  # Initialize: waiter yields the processed event
    # The direct-resume is parked in the pending deque; peek() must
    # report it as due now rather than looking only at the heap.
    assert env.peek() == 0.0
    env.run()
    assert done == [True]
    assert env.direct_resumes >= 1


# ----------------------------------------------------------------------
# reprs
# ----------------------------------------------------------------------
def test_reprs_are_informative():
    env = Environment()
    ev = env.event()
    assert "Event" in repr(ev) and "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev) or "processed" in repr(ev)
    t = env.timeout(2.5)
    assert "Timeout" in repr(t) and "2.5" in repr(t)

    def body():
        yield env.timeout(1.0)

    p = env.process(body(), name="worker-1")
    assert "worker-1" in repr(p)
    cond = env.all_of([env.event(), env.event()])
    assert "AllOf" in repr(cond) and "0/2" in repr(cond)
    env.run()
