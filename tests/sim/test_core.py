"""Unit tests for the DES kernel."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError
from repro.sim.core import Event


class TestTimeAndTimeouts:
    def test_time_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_timeout_advances_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(5)
            assert env.now == 5.0
            yield env.timeout(2.5)
            assert env.now == 7.5

        env.process(proc())
        env.run()
        assert env.now == 7.5

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_run_until_time_stops_exactly(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(10)
            fired.append(env.now)

        env.process(proc())
        env.run(until=5.0)
        assert env.now == 5.0 and not fired
        env.run(until=20.0)
        assert fired == [10.0]
        assert env.now == 20.0

    def test_run_backwards_rejected(self):
        env = Environment()
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_timeout_value_passed_through(self):
        env = Environment()
        got = []

        def proc():
            value = yield env.timeout(1, value="payload")
            got.append(value)

        env.process(proc())
        env.run()
        assert got == ["payload"]


class TestEvents:
    def test_event_succeed_wakes_waiter(self):
        env = Environment()
        ev = env.event()
        got = []

        def waiter():
            got.append((yield ev))

        def firer():
            yield env.timeout(3)
            ev.succeed(99)

        env.process(waiter())
        env.process(firer())
        env.run()
        assert got == [99]

    def test_event_fail_raises_in_waiter(self):
        env = Environment()
        ev = env.event()
        caught = []

        def waiter():
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        def firer():
            yield env.timeout(1)
            ev.fail(ValueError("boom"))

        env.process(waiter())
        env.process(firer())
        env.run()
        assert caught == ["boom"]

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_unhandled_failure_propagates_out_of_run(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("nobody caught me"))
        with pytest.raises(RuntimeError):
            env.run()

    def test_yielding_already_fired_event(self):
        env = Environment()
        ev = env.event()
        ev.succeed("early")
        env.run()
        got = []

        def late():
            got.append((yield ev))

        env.process(late())
        env.run()
        assert got == ["early"]


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def child():
            yield env.timeout(2)
            return "done"

        def parent():
            result = yield env.process(child())
            assert result == "done"
            return "parent-done"

        proc = env.process(parent())
        assert env.run(proc) == "parent-done"

    def test_exit_helper(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            env.exit(42)

        assert env.run(env.process(proc())) == 42

    def test_process_exception_propagates_to_waiter(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise KeyError("inside")

        def parent():
            try:
                yield env.process(bad())
            except KeyError:
                return "caught"

        assert env.run(env.process(parent())) == "caught"

    def test_uncaught_process_exception_raises_from_run(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise KeyError("unseen")

        env.process(bad())
        with pytest.raises(KeyError):
            env.run()

    def test_yielding_non_event_is_error(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(42)

    def test_determinism_ties_broken_by_creation_order(self):
        order = []

        def make(env, name):
            def proc():
                yield env.timeout(1)
                order.append(name)
            return proc

        env = Environment()
        for name in ("a", "b", "c"):
            env.process(make(env, name)())
        env.run()
        assert order == ["a", "b", "c"]


class TestInterrupts:
    def test_interrupt_during_timeout(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                log.append((env.now, intr.cause))

        victim = env.process(sleeper())

        def interrupter():
            yield env.timeout(3)
            victim.interrupt("wake up")

        env.process(interrupter())
        env.run()
        assert log == [(3.0, "wake up")]

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_process_survives_interrupt_and_continues(self):
        env = Environment()
        log = []

        def resilient():
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(5)
            log.append(env.now)

        victim = env.process(resilient())

        def interrupter():
            yield env.timeout(2)
            victim.interrupt()

        env.process(interrupter())
        env.run()
        assert log == [7.0]


class TestConditions:
    def test_all_of(self):
        env = Environment()

        def proc():
            t1 = env.timeout(3, value="a")
            t2 = env.timeout(7, value="b")
            results = yield env.all_of([t1, t2])
            assert set(results.values()) == {"a", "b"}
            return env.now

        assert env.run(env.process(proc())) == 7.0

    def test_any_of(self):
        env = Environment()

        def proc():
            t1 = env.timeout(3, value="fast")
            t2 = env.timeout(7, value="slow")
            results = yield env.any_of([t1, t2])
            assert "fast" in results.values()
            return env.now

        assert env.run(env.process(proc())) == 3.0

    def test_empty_all_of_fires_immediately(self):
        env = Environment()

        def proc():
            yield env.all_of([])
            return env.now

        assert env.run(env.process(proc())) == 0.0


class TestRunControl:
    def test_run_until_event(self):
        env = Environment()
        assert env.run(env.timeout(4, value="v")) == "v"
        assert env.now == 4.0

    def test_run_until_never_fired_event_raises(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            env.run(ev)

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(9)
        assert env.peek() == 9.0

    def test_step_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()
