"""The perf layer: counters, timer, trajectory records, and the CLI."""

import json

from repro.models.platform import LINUX
from repro.nest.config import NestConfig
from repro.perf import KernelCounters, PerfReport, WallClockTimer, collect
from repro.perf.bench import append_record, run_kernel_bench
from repro.perf.counters import collect_server
from repro.perf.workloads import kernel_microbench_workload
from repro.sim.core import Environment
from repro.simnest.server import SimNest
from repro.simnest.workload import _spawn_clients


def _run_small_mixed():
    env = Environment()
    server = SimNest(env, LINUX, NestConfig(scheduling="fcfs"))
    _spawn_clients(
        env,
        get_server=lambda _p: server,
        get_cap=lambda _p: None,
        protocols=["chirp", "nfs"],
        n_clients=1,
        file_bytes=500_000,
        files_per_client=100,
    )
    env.run(until=0.1)
    return server


def test_counters_move_on_a_real_workload():
    server = _run_small_mixed()
    report = collect_server(server)
    k = report.kernel
    assert k.events_processed > 0
    assert k.events_scheduled >= k.events_processed
    assert k.timeouts_reused > 0, "the timeout pool should engage"
    assert 0.0 < k.pool_hit_rate <= 1.0
    assert k.heap_peak > 0
    (link,) = report.links
    assert link.reallocations > 0
    assert link.bytes_delivered > 0
    (gate,) = report.gates
    assert gate.grants > 0
    assert gate.arbitrations >= gate.grants


def test_snapshot_tolerates_counterless_objects():
    class Bare:
        pass

    report = collect(Environment(), links=[Bare()], gates=[Bare()])
    assert report.kernel.events_processed == 0
    assert report.links[0].reallocations == 0
    assert report.gates[0].grants == 0


def test_report_render_and_dict_roundtrip():
    server = _run_small_mixed()
    report = collect_server(server)
    text = report.render()
    assert "events processed" in text
    assert "pool hit rate" in text
    assert "reallocations" in text
    doc = report.to_dict()
    json.dumps(doc)  # must be JSON-serializable
    assert doc["kernel"]["events_processed"] == report.kernel.events_processed


def test_wall_clock_timer():
    with WallClockTimer() as timer:
        sum(range(1000))
    assert timer.elapsed >= 0.0


def test_kernel_microbench_is_deterministic_in_sim():
    env1 = kernel_microbench_workload(n_processes=20, steps=5)
    env2 = kernel_microbench_workload(n_processes=20, steps=5)
    # Same simulated end time and same event counts: wall clock varies,
    # the simulation itself must not.
    assert env1.now == env2.now
    assert KernelCounters.snapshot(env1) == KernelCounters.snapshot(env2)


def test_run_kernel_bench_record_shape():
    record = run_kernel_bench(n_processes=20, steps=5)
    assert record["bench"] == "kernel_microbench"
    assert record["wall_seconds"] >= 0
    assert record["counters"]["events_processed"] > 0


def test_append_record_creates_and_appends(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    doc = append_record(path, {"label": "a"})
    assert [r["label"] for r in doc["runs"]] == ["a"]
    doc = append_record(path, {"label": "b"})
    assert [r["label"] for r in doc["runs"]] == ["a", "b"]
    with open(path, encoding="utf-8") as fh:
        on_disk = json.load(fh)
    assert on_disk["schema"] == 1
    assert len(on_disk["runs"]) == 2


def test_cli_perf_smoke_appends_record(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["perf", "smoke", "--label", "test-run"]) == 0
    out = capsys.readouterr().out
    assert "events/s" in out
    with open(tmp_path / "BENCH_kernel.json", encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["runs"][-1]["label"] == "test-run"


def test_cli_perf_counters_prints_report(capsys):
    from repro.cli import main

    assert main(["perf", "counters"]) == 0
    out = capsys.readouterr().out
    assert "kernel counters" in out
    assert "chunk completions" in out
