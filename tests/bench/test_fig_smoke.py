"""Fast smoke tests for the figure harnesses.

The full shape assertions live in ``benchmarks/``; these short-horizon
runs only verify the harness plumbing (structure, units, reports), so
``pytest tests/`` stays quick.
"""

from repro.bench import fig3, fig4, fig5, fig6
from repro.models.platform import LINUX
from repro.simnest.workload import run_mixed_protocols, run_single_protocol


class TestWorkloadPlumbing:
    def test_single_protocol_result_shape(self):
        result = run_single_protocol("chirp", LINUX, "nest",
                                     horizon=2.0, warmup=0.5)
        assert result.bandwidth_mbps() > 0
        assert set(result.bytes_by_protocol) == {"chirp"}

    def test_mixed_covers_all_protocols(self):
        result = run_mixed_protocols(LINUX, "nest", horizon=2.0, warmup=0.5)
        assert set(result.bytes_by_protocol) >= {"chirp", "gridftp", "http"}

    def test_jbos_kind(self):
        result = run_single_protocol("http", LINUX, "jbos",
                                     horizon=2.0, warmup=0.5)
        assert result.bandwidth_mbps() > 0

    def test_unknown_kind_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            run_single_protocol("http", LINUX, "cloud")


class TestReports:
    def test_fig4_report_renders(self):
        # FIFO row only (fast): build a result by hand.
        row = fig4.Fig4Row("FIFO", 33.0,
                           {p: 8.0 for p in fig4.PROTOCOLS}, None, None)
        result = fig4.Fig4Result(rows=[row])
        text = fig4.report(result)
        assert "FIFO" in text and "33.0" in text

    def test_fig6_report_renders(self):
        result = fig6.Fig6Result(sizes_mb=(20,), disabled_mbps={20: 21.0},
                                 enabled_mbps={20: 20.0})
        text = fig6.report(result)
        assert "0.95" in text

    def test_fig6_single_point(self):
        bw = fig6.measure_write(20_000_000, quotas_enabled=False)
        assert 15.0 < bw < 25.0

    def test_fig5_single_measurement(self):
        m = fig5.run_concurrency_workload(
            LINUX, 1024, "events", resident=True,
            files_per_client=500, horizon=1.0, warmup=0.2,
        )
        assert m.avg_latency_ms > 0
        assert m.model_mix.get("events", 0) > 0

    def test_fig3_report_renders(self):
        result = fig3.Fig3Result(
            single_nest={p: 30.0 for p in fig3.SINGLE_PROTOCOLS},
            single_native={p: 29.0 for p in fig3.SINGLE_PROTOCOLS},
            mixed_nest={p: 8.0 for p in fig3.MIXED_PROTOCOLS},
            mixed_jbos={p: 8.0 for p in fig3.MIXED_PROTOCOLS},
            mixed_nest_total=32.0,
            mixed_jbos_total=32.0,
        )
        text = fig3.report(result)
        assert "mixed total" in text
