"""Unit tests for Jain's fairness index."""

import pytest

from repro.bench.fairness import jains_fairness, proportional_shares


class TestJain:
    def test_ideal_allocation_is_one(self):
        assert jains_fairness([10, 20, 30], [10, 20, 30]) == pytest.approx(1.0)

    def test_scaled_allocation_still_one(self):
        # Jain's index measures proportions, not magnitudes.
        assert jains_fairness([5, 10, 15], [10, 20, 30]) == pytest.approx(1.0)

    def test_single_component(self):
        assert jains_fairness([7], [3]) == pytest.approx(1.0)

    def test_skew_reduces_index(self):
        fair = jains_fairness([10, 10], [10, 10])
        skewed = jains_fairness([19, 1], [10, 10])
        assert skewed < fair

    def test_paper_magnitudes(self):
        # The paper's 0.87 case: NFS far short of a 4x share while the
        # others overshoot.
        desired = proportional_shares(28.0, [1, 1, 1, 4])
        delivered = [5.4, 5.4, 5.4, 8.0]
        value = jains_fairness(delivered, desired)
        assert 0.75 < value < 0.95

    def test_total_starvation(self):
        value = jains_fairness([30, 0], [15, 15])
        assert value == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            jains_fairness([1, 2], [1])
        with pytest.raises(ValueError):
            jains_fairness([], [])
        with pytest.raises(ValueError):
            jains_fairness([1], [0])


class TestShares:
    def test_proportional_shares(self):
        assert proportional_shares(28.0, [1, 1, 1, 4]) == pytest.approx(
            [4.0, 4.0, 4.0, 16.0]
        )

    def test_zero_ratios_rejected(self):
        with pytest.raises(ValueError):
            proportional_shares(10, [0, 0])
