"""Unit tests for the DAGMan-style executor."""

import threading
import time

import pytest

from repro.grid.dagman import DagError, DagMan


class TestStructure:
    def test_duplicate_name_rejected(self):
        dag = DagMan()
        dag.add("a", lambda: None)
        with pytest.raises(DagError):
            dag.add("a", lambda: None)

    def test_unknown_parent_rejected(self):
        dag = DagMan()
        dag.add("child", lambda: None, parents=["ghost"])
        with pytest.raises(DagError):
            dag.run()

    def test_cycle_rejected(self):
        dag = DagMan()
        dag.add("a", lambda: None, parents=["b"])
        dag.add("b", lambda: None, parents=["a"])
        with pytest.raises(DagError):
            dag.run()

    def test_self_cycle_rejected(self):
        dag = DagMan()
        dag.add("a", lambda: None, parents=["a"])
        with pytest.raises(DagError):
            dag.run()


class TestExecution:
    def test_linear_chain_order(self):
        order = []
        dag = DagMan()
        dag.add("one", lambda: order.append(1))
        dag.add("two", lambda: order.append(2), parents=["one"])
        dag.add("three", lambda: order.append(3), parents=["two"])
        assert dag.run()
        assert order == [1, 2, 3]

    def test_diamond(self):
        order = []
        lock = threading.Lock()

        def step(n):
            def fn():
                with lock:
                    order.append(n)
            return fn

        dag = DagMan()
        dag.add("src", step("src"))
        dag.add("left", step("left"), parents=["src"])
        dag.add("right", step("right"), parents=["src"])
        dag.add("sink", step("sink"), parents=["left", "right"])
        assert dag.run()
        assert order[0] == "src" and order[-1] == "sink"
        assert set(order[1:3]) == {"left", "right"}

    def test_results_recorded(self):
        dag = DagMan()
        dag.add("compute", lambda: 42)
        dag.run()
        assert dag.node("compute").result == 42

    def test_failure_skips_descendants(self):
        ran = []

        def boom():
            raise RuntimeError("nope")

        dag = DagMan()
        dag.add("bad", boom)
        dag.add("child", lambda: ran.append("child"), parents=["bad"])
        dag.add("independent", lambda: ran.append("independent"))
        assert not dag.run()
        assert dag.report() == {
            "bad": "failed", "child": "skipped", "independent": "done",
        }
        assert ran == ["independent"]
        assert isinstance(dag.node("bad").error, RuntimeError)

    def test_retries(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ValueError("transient")
            return "finally"

        dag = DagMan()
        dag.add("flaky", flaky, retries=3)
        assert dag.run()
        assert len(attempts) == 3
        assert dag.node("flaky").result == "finally"

    def test_retries_exhausted(self):
        dag = DagMan()
        dag.add("hopeless", lambda: 1 / 0, retries=2)
        assert not dag.run()
        assert dag.node("hopeless").attempts == 3

    def test_concurrency_limit(self):
        active = []
        peak = []
        lock = threading.Lock()

        def work():
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.05)
            with lock:
                active.pop()

        dag = DagMan()
        for i in range(8):
            dag.add(f"n{i}", work)
        assert dag.run(max_concurrent=2)
        assert max(peak) <= 2

    def test_empty_dag(self):
        assert DagMan().run()
