"""Unit tests for the collector."""

import pytest

from repro.classads import ClassAd, parse
from repro.grid.discovery import Collector
from repro.nest.advertise import storage_request_ad


def storage_ad(name, grantable, protocols=("chirp", "gridftp")):
    ad = parse(
        '[ Type = "Storage"; Requirements = other.Type == "Request" '
        "&& other.RequestedSpace <= my.GrantableSpace ]"
    )
    ad["Name"] = name
    ad["Host"] = "127.0.0.1"
    ad["GrantableSpace"] = grantable
    ad["Protocols"] = list(protocols)
    return ad


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCollector:
    def test_advertise_and_count(self):
        c = Collector()
        c.advertise(storage_ad("a", 100))
        c.advertise(storage_ad("b", 100))
        assert len(c) == 2

    def test_refresh_replaces(self):
        c = Collector()
        c.advertise(storage_ad("a", 100))
        c.advertise(storage_ad("a", 999))
        assert len(c) == 1
        best = c.locate(storage_request_ad(10))
        assert best.eval("GrantableSpace") == 999

    def test_nameless_ad_rejected(self):
        c = Collector()
        with pytest.raises(ValueError):
            c.advertise(ClassAd({"Type": "Storage"}))

    def test_ttl_expiry(self):
        clock = Clock()
        c = Collector(clock=clock, default_ttl=60)
        c.advertise(storage_ad("a", 100))
        clock.now = 59
        assert len(c) == 1
        clock.now = 61
        assert len(c) == 0

    def test_per_ad_ttl(self):
        clock = Clock()
        c = Collector(clock=clock, default_ttl=60)
        c.advertise(storage_ad("short", 100), ttl=5)
        c.advertise(storage_ad("long", 100), ttl=500)
        clock.now = 100
        assert len(c) == 1

    def test_withdraw(self):
        c = Collector()
        c.advertise(storage_ad("a", 100))
        c.withdraw("a")
        assert len(c) == 0

    def test_query_ranked_by_request_rank(self):
        c = Collector()
        c.advertise(storage_ad("small", 10_000))
        c.advertise(storage_ad("big", 1_000_000))
        results = c.query(storage_request_ad(1_000))
        assert [str(ad.eval("Name")) for ad in results] == ["big", "small"]

    def test_query_filters_non_matching(self):
        c = Collector()
        c.advertise(storage_ad("tiny", 10))
        assert c.query(storage_request_ad(10_000)) == []
        assert c.locate(storage_request_ad(10_000)) is None

    def test_protocol_constraint(self):
        c = Collector()
        c.advertise(storage_ad("nfs-less", 10**9, protocols=("http",)))
        assert c.locate(storage_request_ad(1, protocol="nfs")) is None

    def test_slo_degraded_ads_rank_last_but_still_match(self):
        # An appliance burning its error budget advertises
        # SloDegraded=true; the matchmaker demotes it below every
        # healthy candidate (whatever its rank) without excluding it
        # -- a degraded replica may still be the only copy.
        c = Collector()
        burning = storage_ad("burning", 1_000_000)
        burning["SloDegraded"] = True
        c.advertise(burning)
        c.advertise(storage_ad("healthy", 10_000))
        names = [str(ad.eval("Name"))
                 for ad in c.query(storage_request_ad(1_000))]
        assert names == ["healthy", "burning"]
        # Alone, the degraded site still serves.
        c.withdraw("healthy")
        assert str(c.locate(storage_request_ad(1_000)).eval("Name")) \
            == "burning"


class TestTtlAndNames:
    """TTL expiry and the liveness helpers, under an injected clock."""

    def test_names_tracks_expiry(self):
        clock = Clock()
        c = Collector(clock=clock, default_ttl=10)
        c.advertise(storage_ad("a", 100))
        clock.now = 5
        c.advertise(storage_ad("b", 100))
        assert c.names() == {"a", "b"}
        clock.now = 11  # a's TTL passed, b's has not
        assert c.names() == {"b"}
        clock.now = 16
        assert c.names() == set()

    def test_refresh_extends_ttl(self):
        # The heartbeat story: re-advertising before expiry keeps the
        # ad alive indefinitely.
        clock = Clock()
        c = Collector(clock=clock, default_ttl=10)
        for t in (0, 8, 16, 24):
            clock.now = t
            c.advertise(storage_ad("a", 100))
        clock.now = 33  # 9s after the last refresh
        assert c.names() == {"a"}
        clock.now = 35  # 11s after: expired
        assert c.names() == set()

    def test_lookup_live_and_expired(self):
        clock = Clock()
        c = Collector(clock=clock, default_ttl=10)
        c.advertise(storage_ad("a", 777))
        assert c.lookup("a").eval("GrantableSpace") == 777
        assert c.lookup("missing") is None
        clock.now = 11
        assert c.lookup("a") is None

    def test_withdraw_removes_from_names(self):
        c = Collector()
        c.advertise(storage_ad("a", 100))
        c.advertise(storage_ad("b", 100))
        c.withdraw("a")
        assert c.names() == {"b"}


class TestFastest:
    """fastest() ranks by the measured ThroughputMBps health attr."""

    @staticmethod
    def _ad(name, mbps, grantable=10**9):
        ad = storage_ad(name, grantable)
        ad["ThroughputMBps"] = mbps
        return ad

    def test_prefers_measured_throughput_over_space(self):
        c = Collector()
        c.advertise(self._ad("roomy-but-slow", 1.0, grantable=10**12))
        c.advertise(self._ad("tight-but-fast", 90.0, grantable=10**6))
        best = c.fastest(1000)
        assert str(best.eval("Name")) == "tight-but-fast"

    def test_respects_space_requirement(self):
        c = Collector()
        c.advertise(self._ad("fast-but-full", 90.0, grantable=10))
        c.advertise(self._ad("slow-but-roomy", 1.0, grantable=10**9))
        best = c.fastest(1000)
        assert str(best.eval("Name")) == "slow-but-roomy"

    def test_expired_ads_never_rank(self):
        clock = Clock()
        c = Collector(clock=clock, default_ttl=10)
        c.advertise(self._ad("fast", 90.0))
        clock.now = 5
        c.advertise(self._ad("slow", 1.0))
        clock.now = 11  # "fast" expired; only "slow" is matchable
        best = c.fastest(1000)
        assert str(best.eval("Name")) == "slow"

    def test_protocol_filter(self):
        c = Collector()
        fast = self._ad("fast", 90.0)
        fast["Protocols"] = ["http"]
        c.advertise(fast)
        c.advertise(self._ad("slow", 1.0))  # chirp + gridftp
        best = c.fastest(1000, protocol="gridftp")
        assert str(best.eval("Name")) == "slow"
