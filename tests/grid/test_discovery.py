"""Unit tests for the collector."""

import pytest

from repro.classads import ClassAd, parse
from repro.grid.discovery import Collector
from repro.nest.advertise import storage_request_ad


def storage_ad(name, grantable, protocols=("chirp", "gridftp")):
    ad = parse(
        '[ Type = "Storage"; Requirements = other.Type == "Request" '
        "&& other.RequestedSpace <= my.GrantableSpace ]"
    )
    ad["Name"] = name
    ad["Host"] = "127.0.0.1"
    ad["GrantableSpace"] = grantable
    ad["Protocols"] = list(protocols)
    return ad


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCollector:
    def test_advertise_and_count(self):
        c = Collector()
        c.advertise(storage_ad("a", 100))
        c.advertise(storage_ad("b", 100))
        assert len(c) == 2

    def test_refresh_replaces(self):
        c = Collector()
        c.advertise(storage_ad("a", 100))
        c.advertise(storage_ad("a", 999))
        assert len(c) == 1
        best = c.locate(storage_request_ad(10))
        assert best.eval("GrantableSpace") == 999

    def test_nameless_ad_rejected(self):
        c = Collector()
        with pytest.raises(ValueError):
            c.advertise(ClassAd({"Type": "Storage"}))

    def test_ttl_expiry(self):
        clock = Clock()
        c = Collector(clock=clock, default_ttl=60)
        c.advertise(storage_ad("a", 100))
        clock.now = 59
        assert len(c) == 1
        clock.now = 61
        assert len(c) == 0

    def test_per_ad_ttl(self):
        clock = Clock()
        c = Collector(clock=clock, default_ttl=60)
        c.advertise(storage_ad("short", 100), ttl=5)
        c.advertise(storage_ad("long", 100), ttl=500)
        clock.now = 100
        assert len(c) == 1

    def test_withdraw(self):
        c = Collector()
        c.advertise(storage_ad("a", 100))
        c.withdraw("a")
        assert len(c) == 0

    def test_query_ranked_by_request_rank(self):
        c = Collector()
        c.advertise(storage_ad("small", 10_000))
        c.advertise(storage_ad("big", 1_000_000))
        results = c.query(storage_request_ad(1_000))
        assert [str(ad.eval("Name")) for ad in results] == ["big", "small"]

    def test_query_filters_non_matching(self):
        c = Collector()
        c.advertise(storage_ad("tiny", 10))
        assert c.query(storage_request_ad(10_000)) == []
        assert c.locate(storage_request_ad(10_000)) is None

    def test_protocol_constraint(self):
        c = Collector()
        c.advertise(storage_ad("nfs-less", 10**9, protocols=("http",)))
        assert c.locate(storage_request_ad(1, protocol="nfs")) is None
