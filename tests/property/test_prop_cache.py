"""Property-based tests for the LRU buffer-cache invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.cache import BufferCache

BS = 100


@st.composite
def access_sequences(draw):
    """Random interleavings of reads/writes/cleans/invalidates."""
    n = draw(st.integers(min_value=1, max_value=60))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["read", "write", "clean", "invalidate"]))
        file_id = draw(st.sampled_from(["a", "b", "c"]))
        offset = draw(st.integers(min_value=0, max_value=900))
        nbytes = draw(st.integers(min_value=1, max_value=400))
        ops.append((kind, file_id, offset, nbytes))
    return ops


class TestLruInvariants:
    @given(access_sequences(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_capacity_never_exceeded(self, ops, capacity_blocks):
        cache = BufferCache(capacity_blocks * BS, block_size=BS)
        for kind, file_id, offset, nbytes in ops:
            if kind == "read":
                cache.access_read(file_id, offset, nbytes)
            elif kind == "write":
                cache.access_write(file_id, offset, nbytes)
            elif kind == "clean":
                cache.clean(cache.dirty_blocks_of(file_id))
            else:
                cache.invalidate_file(file_id)
            assert len(cache) <= capacity_blocks
            assert cache.dirty_bytes <= cache.resident_bytes

    @given(access_sequences())
    @settings(max_examples=100, deadline=None)
    def test_evicted_dirty_blocks_were_resident_and_dirty(self, ops):
        cache = BufferCache(4 * BS, block_size=BS)
        dirty_ever: set = set()
        for kind, file_id, offset, nbytes in ops:
            if kind == "write":
                for b in cache.blocks_of(offset, nbytes):
                    dirty_ever.add((file_id, b))
                evicted = cache.access_write(file_id, offset, nbytes)
            elif kind == "read":
                _, _, evicted = cache.access_read(file_id, offset, nbytes)
            else:
                continue
            # Every dirty eviction concerns a block that was written at
            # some point, and no block is reported evicted twice by one
            # access.  (The same access may legitimately re-insert an
            # evicted block -- e.g. a write wider than the cache.)
            assert len(evicted) == len(set(evicted))
            for victim in evicted:
                assert victim in dirty_ever

    @given(access_sequences())
    @settings(max_examples=100, deadline=None)
    def test_read_after_read_hits(self, ops):
        cache = BufferCache(1000 * BS, block_size=BS)  # no evictions
        for kind, file_id, offset, nbytes in ops:
            if kind in ("read", "write"):
                if kind == "read":
                    cache.access_read(file_id, offset, nbytes)
                else:
                    cache.access_write(file_id, offset, nbytes)
                hit, miss, _ = cache.access_read(file_id, offset, nbytes)
                assert miss == 0

    @given(st.integers(min_value=1, max_value=50))
    @settings(deadline=None)
    def test_resident_fraction_bounds(self, nblocks):
        cache = BufferCache(10 * BS, block_size=BS)
        cache.access_read("f", 0, nblocks * BS)
        fraction = cache.resident_fraction("f", nblocks * BS)
        assert 0.0 <= fraction <= 1.0
        assert fraction == min(10, nblocks) / nblocks
