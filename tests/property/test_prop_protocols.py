"""Property-based round-trip tests for the wire codecs."""

import io
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols import chirp, gridftp, nfs
from repro.protocols.common import Request, RequestType
from repro.protocols.xdr import Packer, Unpacker

paths = st.text(
    alphabet=string.ascii_letters + string.digits + "/._- ",
    min_size=1, max_size=40,
).map(lambda s: "/" + s.strip("/"))


class TestChirpRoundTrip:
    @given(paths)
    def test_get(self, path):
        out = chirp.decode_request(chirp.encode_request(
            Request(rtype=RequestType.GET, path=path)))
        assert out.path == path

    @given(paths, st.integers(min_value=0, max_value=2**40))
    def test_put(self, path, length):
        out = chirp.decode_request(chirp.encode_request(
            Request(rtype=RequestType.PUT, path=path, length=length)))
        assert (out.path, out.length) == (path, length)

    @given(st.integers(min_value=1, max_value=2**40),
           st.floats(min_value=0.001, max_value=1e6, allow_nan=False))
    def test_lot_create(self, capacity, duration):
        out = chirp.decode_request(chirp.encode_request(Request(
            rtype=RequestType.LOT_CREATE,
            params={"capacity": capacity, "duration": duration})))
        assert out.params["capacity"] == capacity
        assert abs(out.params["duration"] - duration) < 1e-9 * max(1, duration)


class TestXdrRoundTrip:
    @given(st.lists(st.one_of(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**64 - 1).map(lambda v: ("h", v)),
        st.binary(max_size=100),
        st.text(max_size=50),
        st.booleans(),
    ), max_size=20))
    @settings(max_examples=150)
    def test_mixed_sequences(self, values):
        p = Packer()
        for v in values:
            if isinstance(v, tuple):
                p.pack_hyper(v[1])
            elif isinstance(v, bool):
                p.pack_bool(v)
            elif isinstance(v, int):
                p.pack_uint(v)
            elif isinstance(v, bytes):
                p.pack_opaque(v)
            else:
                p.pack_string(v)
        u = Unpacker(p.get_buffer())
        for v in values:
            if isinstance(v, tuple):
                assert u.unpack_hyper() == v[1]
            elif isinstance(v, bool):
                assert u.unpack_bool() == v
            elif isinstance(v, int):
                assert u.unpack_uint() == v
            elif isinstance(v, bytes):
                assert u.unpack_opaque() == v
            else:
                assert u.unpack_string() == v
        u.done()

    @given(st.binary(max_size=1000))
    def test_record_marking(self, payload):
        buf = io.BytesIO()
        nfs.write_record(buf, payload)
        buf.seek(0)
        assert nfs.read_record(buf) == payload


class TestEblockRoundTrip:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**40),
                              st.binary(min_size=1, max_size=200)),
                    max_size=15))
    @settings(max_examples=100)
    def test_blocks_survive_framing(self, blocks):
        buf = io.BytesIO()
        for offset, payload in blocks:
            gridftp.write_block(buf, offset, payload)
        gridftp.write_eod(buf, eof=True)
        buf.seek(0)
        received = list(gridftp.iter_blocks(buf))
        assert received == blocks

    @given(st.integers(min_value=0, max_value=100_000),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=150)
    def test_striping_partitions_exactly(self, total, streams, block):
        lanes = gridftp.stripe_ranges(total, streams, block)
        assert len(lanes) == streams
        covered = sorted(extent for lane in lanes for extent in lane)
        position = 0
        for offset, length in covered:
            assert offset == position
            assert 0 < length <= block
            position += length
        assert position == total
