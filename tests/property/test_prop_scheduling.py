"""Property-based tests for the stride scheduler's fairness guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nest.scheduling import StrideScheduler, make_job

shares_lists = st.lists(st.integers(min_value=1, max_value=8),
                        min_size=2, max_size=5)


class TestProportionality:
    @given(shares_lists)
    @settings(max_examples=60, deadline=None)
    def test_long_run_shares_converge(self, ratios):
        protos = [f"p{i}" for i in range(len(ratios))]
        sched = StrideScheduler(shares=dict(zip(protos, map(float, ratios))))
        jobs = {}
        for proto in protos:
            job = make_job(proto)
            jobs[proto] = job
            sched.add(job)
        moved = {proto: 0 for proto in protos}
        for _ in range(4000):
            job = sched.select()
            sched.charge(job, 1000)
            moved[job.protocol] += 1000
        total = sum(moved.values())
        share_sum = sum(ratios)
        for proto, ratio in zip(protos, ratios):
            expected = ratio / share_sum
            actual = moved[proto] / total
            assert abs(actual - expected) < 0.03

    @given(shares_lists, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_class_share_independent_of_job_count(self, ratios, njobs):
        # Splitting one class across several jobs must not change the
        # class's aggregate share.
        protos = [f"p{i}" for i in range(len(ratios))]
        sched = StrideScheduler(shares=dict(zip(protos, map(float, ratios))))
        for proto in protos:
            count = njobs if proto == protos[0] else 1
            for _ in range(count):
                sched.add(make_job(proto))
        moved = {proto: 0 for proto in protos}
        for _ in range(4000):
            job = sched.select()
            sched.charge(job, 500)
            moved[job.protocol] += 500
        total = sum(moved.values())
        expected = ratios[0] / sum(ratios)
        assert abs(moved[protos[0]] / total - expected) < 0.03


class TestInvariants:
    @given(st.lists(st.integers(min_value=1, max_value=10**6),
                    min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_charge_accounting_exact(self, amounts):
        sched = StrideScheduler(shares={"a": 1})
        job = make_job("a")
        sched.add(job)
        for amount in amounts:
            sched.charge(job, amount)
        assert job.bytes_moved == sum(amounts)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_select_is_deterministic(self, njobs):
        def run():
            sched = StrideScheduler(shares={"x": 1})
            jobs = []
            for i in range(njobs):
                job = make_job("x")
                job.arrival_seq = i  # normalize across runs
                job.job_id = i
                jobs.append(job)
                sched.add(job)
            picks = []
            for _ in range(50):
                job = sched.select()
                picks.append(job.job_id)
                sched.charge(job, 100)
            return picks

        assert run() == run()

    @given(st.lists(st.booleans(), min_size=2, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_never_selects_unready(self, readiness):
        sched = StrideScheduler(shares={"a": 1})
        jobs = []
        for ready in readiness:
            job = make_job("a")
            job.ready = ready
            jobs.append(job)
            sched.add(job)
        chosen = sched.select()
        if any(readiness):
            assert chosen is not None and chosen.ready
        else:
            assert chosen is None
