"""Property-based tests for the ClassAd language."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classads import ClassAd, parse, parse_expression
from repro.classads.ast import ERROR, UNDEFINED, Error, Undefined
from repro.classads.evaluator import EvalContext, evaluate

names = st.text(alphabet=string.ascii_letters + "_", min_size=1, max_size=12)

scalars = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(alphabet=string.printable, max_size=30),
)


@st.composite
def classads(draw):
    ad = ClassAd()
    # Unique (case-insensitive) names so round-trip is well defined.
    keys = draw(st.lists(names, min_size=0, max_size=6,
                         unique_by=lambda s: s.lower()))
    for key in keys:
        ad[key] = draw(scalars)
    return ad


class TestRoundTrip:
    @given(classads())
    @settings(max_examples=200)
    def test_external_repr_parses_back_identically(self, ad):
        text = ad.external_repr()
        reparsed = parse(text)
        assert list(reparsed) == list(ad)
        for name in ad:
            left = ad.eval(name)
            right = reparsed.eval(name)
            if isinstance(left, float):
                assert right == left
            else:
                assert right == left

    @given(classads())
    def test_repr_is_stable_under_double_round_trip(self, ad):
        once = parse(ad.external_repr()).external_repr()
        twice = parse(once).external_repr()
        assert once == twice


class TestEvaluatorTotality:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000),
           st.sampled_from(["+", "-", "*", "/", "%", "<", "<=", ">", ">=",
                            "==", "!=", "=?=", "=!="]))
    def test_integer_ops_never_crash(self, a, b, op):
        value = evaluate(parse_expression(f"({a}) {op} ({b})"))
        assert isinstance(value, (int, float, bool, Undefined, Error))

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_arithmetic_matches_python_when_defined(self, a, b):
        total = evaluate(parse_expression(f"({a}) + ({b})"))
        assert total == a + b

    @given(st.integers(-1000, 1000), st.integers(1, 1000))
    def test_division_truncates_toward_zero(self, a, b):
        got = evaluate(parse_expression(f"({a}) / ({b})"))
        assert got == int(a / b)

    @given(st.booleans(), st.booleans())
    def test_logic_matches_python_on_booleans(self, a, b):
        sa, sb = str(a).lower(), str(b).lower()
        assert evaluate(parse_expression(f"{sa} && {sb}")) == (a and b)
        assert evaluate(parse_expression(f"{sa} || {sb}")) == (a or b)


class TestThreeValuedLaws:
    @given(st.sampled_from(["undefined", "error", "true", "false", "3"]))
    def test_false_annihilates_and(self, other):
        assert evaluate(parse_expression(f"false && {other}")) is False
        assert evaluate(parse_expression(f"{other} && false")) is False or \
            isinstance(evaluate(parse_expression(f"{other} && false")), Error)

    @given(st.sampled_from(["undefined", "true", "false"]))
    def test_true_annihilates_or(self, other):
        assert evaluate(parse_expression(f"true || {other}")) is True
        assert evaluate(parse_expression(f"{other} || true")) is True

    @given(scalars)
    def test_meta_equality_is_reflexive(self, value):
        ad = ClassAd({"X": value})
        result = evaluate(parse_expression("X =?= X"), EvalContext(my=ad))
        assert result is True
