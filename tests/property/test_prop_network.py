"""Property-based tests for the fair-share link: conservation and caps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.network import FairShareLink
from repro.sim import Environment

flow_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=10_000),        # bytes
        st.one_of(st.none(),
                  st.floats(min_value=0.5, max_value=50.0)),  # cap
        st.floats(min_value=0.0, max_value=20.0),          # start time
    ),
    min_size=1,
    max_size=8,
)


def run_flows(specs, capacity=10.0, group_cap=None):
    env = Environment()
    link = FairShareLink(env, capacity)
    if group_cap is not None:
        link.set_group_cap("g", group_cap)
    finish = {}

    def flow(i, nbytes, cap, delay):
        yield env.timeout(delay)
        yield link.transfer(nbytes, cap=cap,
                            group="g" if group_cap is not None else None)
        finish[i] = env.now

    for i, (nbytes, cap, delay) in enumerate(specs):
        env.process(flow(i, nbytes, cap, delay))
    env.run()
    return env, link, finish


class TestConservation:
    @given(flow_specs)
    @settings(max_examples=100, deadline=None)
    def test_all_bytes_delivered(self, specs):
        _, link, finish = run_flows(specs)
        assert len(finish) == len(specs)
        assert link.bytes_delivered == pytest.approx(
            sum(nbytes for nbytes, _, _ in specs), rel=1e-6
        )

    @given(flow_specs)
    @settings(max_examples=100, deadline=None)
    def test_link_capacity_respected(self, specs):
        # Total time must be at least total bytes / capacity after the
        # last arrival... conservatively: total bytes / capacity.
        env, _, finish = run_flows(specs, capacity=10.0)
        total_bytes = sum(nbytes for nbytes, _, _ in specs)
        assert env.now >= total_bytes / 10.0 - 1e-6

    @given(flow_specs)
    @settings(max_examples=100, deadline=None)
    def test_per_flow_cap_is_a_lower_bound_on_duration(self, specs):
        _, _, finish = run_flows(specs)
        for i, (nbytes, cap, delay) in enumerate(specs):
            if cap is not None:
                assert finish[i] >= delay + nbytes / cap - 1e-6

    @given(flow_specs, st.floats(min_value=1.0, max_value=8.0))
    @settings(max_examples=60, deadline=None)
    def test_group_cap_bounds_aggregate(self, specs, group_cap):
        env, link, finish = run_flows(specs, capacity=100.0,
                                      group_cap=group_cap)
        total_bytes = sum(nbytes for nbytes, _, _ in specs)
        # The whole group can never beat its cap end to end.
        assert env.now >= total_bytes / group_cap - 1e-6


class TestMonotonicity:
    @given(st.integers(min_value=1, max_value=10_000),
           st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_more_bytes_take_longer(self, a, b):
        small, large = sorted((a, b))
        _, _, f1 = run_flows([(small, None, 0.0)])
        _, _, f2 = run_flows([(large, None, 0.0)])
        assert f1[0] <= f2[0] + 1e-9
