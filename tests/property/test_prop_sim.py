"""Property-based tests for the DES kernel: determinism and ordering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource


@st.composite
def schedules(draw):
    """Random process specs: (start_delay, work_duration)."""
    n = draw(st.integers(min_value=1, max_value=12))
    return [
        (
            draw(st.floats(min_value=0.0, max_value=10.0)),
            draw(st.floats(min_value=0.01, max_value=5.0)),
        )
        for _ in range(n)
    ]


def run_schedule(specs, capacity):
    env = Environment()
    res = Resource(env, capacity=capacity)
    log = []

    def worker(i, delay, work):
        yield env.timeout(delay)
        with res.request() as req:
            yield req
            log.append(("start", i, env.now))
            yield env.timeout(work)
            log.append(("end", i, env.now))

    for i, (delay, work) in enumerate(specs):
        env.process(worker(i, delay, work))
    env.run()
    return log, env.now


class TestDeterminism:
    @given(schedules(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_identical_runs_identical_logs(self, specs, capacity):
        first = run_schedule(specs, capacity)
        second = run_schedule(specs, capacity)
        assert first == second

    @given(schedules())
    @settings(max_examples=100, deadline=None)
    def test_time_is_monotone_in_log(self, specs):
        log, _ = run_schedule(specs, capacity=2)
        times = [t for _, _, t in log]
        assert times == sorted(times)

    @given(schedules(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_every_worker_starts_and_ends_once(self, specs, capacity):
        log, _ = run_schedule(specs, capacity)
        starts = [i for kind, i, _ in log if kind == "start"]
        ends = [i for kind, i, _ in log if kind == "end"]
        assert sorted(starts) == list(range(len(specs)))
        assert sorted(ends) == list(range(len(specs)))

    @given(schedules())
    @settings(max_examples=100, deadline=None)
    def test_capacity_one_serializes_intervals(self, specs):
        log, _ = run_schedule(specs, capacity=1)
        intervals = {}
        for kind, i, t in log:
            intervals.setdefault(i, {})[kind] = t
        spans = sorted((v["start"], v["end"]) for v in intervals.values())
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2 + 1e-12

    @given(schedules(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounded_below_by_total_work(self, specs, capacity):
        _, makespan = run_schedule(specs, capacity)
        total_work = sum(work for _, work in specs)
        assert makespan >= total_work / capacity - 1e-9
