"""Property-based tests for lot accounting invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nest.lots import LotError, LotManager, LotState

CAPACITY = 10_000


@st.composite
def lot_workloads(draw):
    """A random sequence of lot operations with a moving clock."""
    n = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["create", "charge", "release", "advance", "renew", "delete"]))
        ops.append((
            kind,
            draw(st.sampled_from(["alice", "bob"])),
            draw(st.integers(min_value=1, max_value=4000)),   # bytes/capacity
            draw(st.floats(min_value=0.5, max_value=30.0)),   # duration/dt
            draw(st.sampled_from(["/f1", "/f2", "/f3"])),
        ))
    return ops


def apply_ops(mgr, clock, ops):
    lot_ids = []
    for kind, user, amount, duration, path in ops:
        try:
            if kind == "create":
                lot = mgr.create_lot(user, amount, duration)
                lot_ids.append(lot.lot_id)
            elif kind == "charge":
                mgr.charge(user, path, amount)
            elif kind == "release":
                mgr.release(path, amount)
            elif kind == "advance":
                clock[0] += duration
            elif kind == "renew" and lot_ids:
                mgr.renew(lot_ids[-1], duration)
            elif kind == "delete" and lot_ids:
                mgr.delete_lot(lot_ids.pop())
        except LotError:
            pass  # rejected operations must leave state consistent


class TestAccountingInvariants:
    @given(lot_workloads(), st.sampled_from(["quota", "nest"]))
    @settings(max_examples=150, deadline=None)
    def test_no_overcommit_of_guaranteed_space(self, ops, enforcement):
        clock = [0.0]
        mgr = LotManager(CAPACITY, clock=lambda: clock[0],
                         enforcement=enforcement)
        apply_ops(mgr, clock, ops)
        active_capacity = sum(
            l.capacity for l in mgr.lots.values() if l.state is LotState.ACTIVE
        )
        best_effort_used = sum(
            l.used for l in mgr.lots.values() if l.state is LotState.BEST_EFFORT
        )
        assert active_capacity + best_effort_used <= CAPACITY

    @given(lot_workloads())
    @settings(max_examples=100, deadline=None)
    def test_nest_mode_never_overfills_a_lot(self, ops):
        clock = [0.0]
        mgr = LotManager(CAPACITY, clock=lambda: clock[0], enforcement="nest")
        apply_ops(mgr, clock, ops)
        for lot in mgr.lots.values():
            assert lot.used <= lot.capacity

    @given(lot_workloads(), st.sampled_from(["quota", "nest"]))
    @settings(max_examples=100, deadline=None)
    def test_charges_never_negative(self, ops, enforcement):
        clock = [0.0]
        mgr = LotManager(CAPACITY, clock=lambda: clock[0],
                         enforcement=enforcement)
        apply_ops(mgr, clock, ops)
        for lot in mgr.lots.values():
            for path, nbytes in lot.charges.items():
                assert nbytes > 0

    @given(lot_workloads())
    @settings(max_examples=100, deadline=None)
    def test_failed_charge_changes_nothing(self, ops):
        clock = [0.0]
        mgr = LotManager(CAPACITY, clock=lambda: clock[0], enforcement="nest")
        apply_ops(mgr, clock, ops)
        before = {
            lot_id: dict(lot.charges) for lot_id, lot in mgr.lots.items()
        }
        try:
            mgr.charge("alice", "/huge", CAPACITY * 10)
            raise AssertionError("charge should have failed")
        except LotError:
            pass
        after = {
            lot_id: dict(lot.charges) for lot_id, lot in mgr.lots.items()
        }
        assert before == after
