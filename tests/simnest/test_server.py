"""Unit tests for the simulated NeST/JBOS servers."""

import pytest

from repro.models.platform import LINUX
from repro.nest.config import NestConfig
from repro.sim import Environment
from repro.simnest.clients import ClientLog, nfs_client, whole_file_client
from repro.simnest.server import SimJbos, SimNest, SimRequestError

MB = 1_000_000


def make_server(env=None, **cfg):
    env = env or Environment()
    return env, SimNest(env, LINUX, NestConfig(**cfg))


class TestPopulateAndServe:
    def test_populate_creates_namespace_and_cache(self):
        env, server = make_server()
        server.populate("/a/b/file", 10 * MB, resident=True)
        assert server.storage.exists("/a/b/file")
        assert server.fs.cache.resident_fraction("/a/b/file", 10 * MB) == 1.0

    def test_populate_cold(self):
        env, server = make_server()
        server.populate("/cold", MB, resident=False)
        assert server.fs.cache.resident_fraction("/cold", MB) == 0.0

    def test_get_delivers_all_bytes(self):
        env, server = make_server()
        server.populate("/f", 5 * MB)
        log = ClientLog(protocol="chirp")
        env.process(whole_file_client(env, server, "chirp", ["/f"], log))
        env.run()
        assert log.total_bytes == 5 * MB
        assert server.stats.bytes_by_protocol["chirp"] == 5 * MB

    def test_missing_file_raises_in_client(self):
        env, server = make_server()

        def client():
            conn = yield from server.connect("chirp")
            yield from server.serve_get(conn, "/nope")

        proc = env.process(client())
        with pytest.raises(SimRequestError):
            env.run(proc)

    def test_put_accounts_space(self):
        env, server = make_server()
        server.storage.mkdir("admin", "/up")
        server.storage.acl_set("admin", "/up", "*", "rliwd")
        log = ClientLog(protocol="http")
        env.process(whole_file_client(env, server, "http", ["/up/new"], log,
                                      put_size=2 * MB))
        env.run()
        assert server.storage.stat("admin", "/up/new")["size"] == 2 * MB

    def test_cached_get_faster_than_cold(self):
        def timed(resident):
            env, server = make_server()
            server.populate("/f", 10 * MB, resident=resident)
            log = ClientLog(protocol="chirp")
            env.process(whole_file_client(env, server, "chirp", ["/f"], log))
            env.run()
            return log.results[0].elapsed

        assert timed(True) < timed(False)

    def test_nfs_block_flow(self):
        env, server = make_server()
        server.populate("/f", MB)
        log = ClientLog(protocol="nfs")
        spec = server.specs["nfs"]
        env.process(nfs_client(env, server, ["/f"], [MB], log, spec))
        env.run()
        assert log.total_bytes == MB
        # Block-granular accounting: many requests, 8 KB each.
        assert server.stats.requests_by_protocol["nfs"] >= MB // spec.block_size

    def test_nfs_write_flow(self):
        from repro.simnest.clients import nfs_writer

        env, server = make_server()
        server.storage.mkdir("admin", "/w")
        server.storage.acl_set("admin", "/w", "*", "rliwd")
        log = ClientLog(protocol="nfs")
        env.process(nfs_writer(env, server, "/w/out", 100_000, log,
                               server.specs["nfs"]))
        env.run()
        assert server.storage.stat("admin", "/w/out")["size"] == 100_000


class TestConcurrencyModels:
    @pytest.mark.parametrize("model", ["threads", "events", "processes"])
    def test_fixed_models_complete(self, model):
        env, server = make_server(concurrency=model,
                                  concurrency_models=(model,))
        server.populate("/f", MB)
        log = ClientLog(protocol="chirp")
        env.process(whole_file_client(env, server, "chirp", ["/f"] * 3, log))
        env.run()
        assert log.total_bytes == 3 * MB
        assert set(server.stats.model_assignments) == {model}

    def test_adaptive_uses_multiple_models(self):
        env, server = make_server(concurrency="adaptive",
                                  concurrency_models=("threads", "events"))
        server.populate("/f", MB)
        log = ClientLog(protocol="chirp")
        env.process(whole_file_client(env, server, "chirp", ["/f"] * 30, log))
        env.run()
        assert len(server.stats.model_assignments) == 2

    def test_events_serialize_disk_reads(self):
        # Two cold files; the event loop cannot overlap their reads.
        def run(model):
            env, server = make_server(concurrency=model,
                                      concurrency_models=(model,))
            for i in range(4):
                server.populate(f"/cold{i}", 5 * MB, resident=False)
            logs = []
            for i in range(4):
                log = ClientLog(protocol="chirp")
                logs.append(log)
                env.process(whole_file_client(env, server, "chirp",
                                              [f"/cold{i}"], log))
            env.run()
            return max(r.end for log in logs for r in log.results)

        assert run("events") > run("threads")


class TestSimJbos:
    def test_per_protocol_servers_isolated(self):
        env = Environment()
        jbos = SimJbos(env, LINUX, protocols=("chirp", "http"))
        assert jbos["chirp"] is not jbos["http"]
        assert jbos["chirp"].scheduler is not jbos["http"].scheduler
        # But the hardware is shared.
        assert jbos["chirp"].fs is jbos["http"].fs
        assert jbos["chirp"].link is jbos["http"].link

    def test_native_servers_skip_vpl_cost(self):
        env = Environment()
        jbos = SimJbos(env, LINUX, protocols=("chirp",))
        assert jbos["chirp"].is_native

    def test_throttle_caps_effective_rate(self):
        env = Environment()
        jbos = SimJbos(env, LINUX, protocols=("http",),
                       throttle={"http": 1.0 * MB})
        assert jbos.effective_cap("http") == 1.0 * MB
        assert jbos.effective_cap("http", client_cap=0.5 * MB) == 0.5 * MB

    def test_total_stats_aggregates(self):
        env = Environment()
        jbos = SimJbos(env, LINUX, protocols=("chirp", "http"))
        for proto in ("chirp", "http"):
            jbos[proto].populate(f"/{proto}", MB)
            log = ClientLog(protocol=proto)
            env.process(whole_file_client(env, jbos[proto], proto,
                                          [f"/{proto}"], log))
        env.run()
        agg = jbos.total_stats()
        assert agg.bytes_by_protocol == {"chirp": MB, "http": MB}
