"""Unit tests for protocol specs and workload plumbing."""

import pytest

from repro.models.platform import LINUX, SOLARIS
from repro.nest.config import NestConfig
from repro.sim import Environment
from repro.simnest.clients import ClientLog, nfs_writer, whole_file_client
from repro.simnest.protocolspec import DEFAULT_SPECS, spec_for
from repro.simnest.server import SimNest

MB = 1_000_000


class TestProtocolSpecs:
    def test_all_five_protocols_specced(self):
        assert set(DEFAULT_SPECS) == {"chirp", "http", "ftp", "gridftp", "nfs"}

    def test_spec_for_overrides(self):
        spec = spec_for("nfs", window=4)
        assert spec.window == 4
        assert DEFAULT_SPECS["nfs"].window != 4 or True  # original untouched
        assert spec_for("nfs").window == DEFAULT_SPECS["nfs"].window

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            spec_for("gopher")

    def test_only_nfs_is_block_based(self):
        for name, spec in DEFAULT_SPECS.items():
            assert spec.block_based == (name == "nfs")

    def test_gridftp_capped_below_link(self):
        assert DEFAULT_SPECS["gridftp"].flow_cap_fraction < 1.0


class TestWorkloadPieces:
    def test_put_workload_on_both_platforms(self):
        for platform in (LINUX, SOLARIS):
            env = Environment()
            server = SimNest(env, platform, NestConfig())
            server.storage.mkdir("admin", "/in")
            server.storage.acl_set("admin", "/in", "*", "rliwd")
            log = ClientLog(protocol="ftp")
            env.process(whole_file_client(env, server, "ftp", ["/in/up"],
                                          log, put_size=MB))
            env.run()
            assert server.storage.stat("admin", "/in/up")["size"] == MB

    def test_nfs_writer_charges_quota_model(self):
        env = Environment()
        cfg = NestConfig(require_lots=True, lot_enforcement="quota")
        server = SimNest(env, LINUX, cfg)
        server.storage.mkdir("admin", "/w")
        server.storage.acl_set("admin", "/w", "*", "rliwd")
        server.storage.lots.create_lot("anonymous", MB, duration=1000)
        log = ClientLog(protocol="nfs")
        env.process(nfs_writer(env, server, "/w/f", 100_000, log,
                               server.specs["nfs"]))
        env.run()
        assert server.storage.lots.total_used() == 100_000

    def test_write_beyond_lot_fails_mid_stream(self):
        from repro.simnest.server import SimRequestError

        env = Environment()
        cfg = NestConfig(require_lots=True, lot_enforcement="nest")
        server = SimNest(env, LINUX, cfg)
        server.storage.mkdir("admin", "/w")
        server.storage.acl_set("admin", "/w", "*", "rliwd")
        server.storage.lots.create_lot("anonymous", 50_000, duration=1000)
        log = ClientLog(protocol="nfs")
        proc = env.process(nfs_writer(env, server, "/w/f", 100_000, log,
                                      server.specs["nfs"]))
        with pytest.raises(SimRequestError):
            env.run(proc)
        # What landed before the refusal stayed within the lot.
        assert server.storage.lots.total_used() <= 50_000

    def test_solaris_slower_than_linux(self):
        def bandwidth(platform):
            env = Environment()
            server = SimNest(env, platform, NestConfig())
            server.populate("/f", 10 * MB, resident=True)
            log = ClientLog(protocol="chirp")
            env.process(whole_file_client(env, server, "chirp", ["/f"] * 5,
                                          log))
            env.run()
            end = max(r.end for r in log.results)
            return log.total_bytes / end

        assert bandwidth(SOLARIS) < 0.5 * bandwidth(LINUX)
