"""Unit tests for the pump gate."""

import pytest

from repro.nest.scheduling import FCFSScheduler, StrideScheduler, make_job
from repro.sim import Environment
from repro.simnest.gate import PumpGate


def drain(env, gate, job, nbytes, log, name):
    yield from gate.acquire(job, nbytes)
    log.append((env.now, name, "granted"))
    yield env.timeout(1.0)
    gate.release(job, nbytes)


class TestAdmission:
    def test_worker_limit_respected(self):
        env = Environment()
        gate = PumpGate(env, FCFSScheduler(), workers=2)
        log = []
        sched = gate.scheduler
        for i in range(4):
            job = make_job("p")
            sched.add(job)
            env.process(drain(env, gate, job, 100, log, i))
        env.run()
        # Two granted at t=0, two at t=1.
        at_zero = [e for e in log if e[0] == 0.0]
        assert len(at_zero) == 2

    def test_fifo_order(self):
        env = Environment()
        gate = PumpGate(env, FCFSScheduler(), workers=1)
        log = []
        for i in range(3):
            job = make_job("p")
            gate.scheduler.add(job)
            env.process(drain(env, gate, job, 100, log, i))
        env.run()
        assert [name for _, name, _ in log] == [0, 1, 2]

    def test_stride_order(self):
        # Two jobs per class keep the wait queue deep, so the stride
        # proportions (not work-conserving slot handoffs) decide who
        # pumps next.
        env = Environment()
        sched = StrideScheduler(shares={"fast": 3, "slow": 1})
        gate = PumpGate(env, sched, workers=1)
        moved = {"fast": 0, "slow": 0}

        def pump(proto):
            job = make_job(proto)
            sched.add(job)
            while True:
                yield from gate.acquire(job, 100)
                yield env.timeout(0.01)
                moved[proto] += 100
                gate.release(job, 100)

        for proto in ("fast", "slow"):
            env.process(pump(proto))
            env.process(pump(proto))
        env.run(until=4.0)
        ratio = moved["fast"] / max(moved["slow"], 1)
        assert 2.2 < ratio < 4.0

    def test_multiple_waiters_per_job(self):
        # An NFS window: two lanes share one flow job.
        env = Environment()
        gate = PumpGate(env, FCFSScheduler(), workers=1)
        job = make_job("nfs")
        gate.scheduler.add(job)
        done = []

        def lane(name):
            yield from gate.acquire(job, 10)
            yield env.timeout(0.5)
            gate.release(job, 10)
            done.append((env.now, name))

        env.process(lane("a"))
        env.process(lane("b"))
        env.run()
        assert len(done) == 2
        assert done[0][0] == 0.5 and done[1][0] == 1.0

    def test_grant_cost_serializes(self):
        env = Environment()
        gate = PumpGate(env, FCFSScheduler(), workers=4, grant_cost=0.1)
        granted = []

        def pump(i):
            job = make_job("p")
            gate.scheduler.add(job)
            yield from gate.acquire(job, 10)
            granted.append(env.now)
            gate.release(job, 10)

        for i in range(3):
            env.process(pump(i))
        env.run()
        # Serial arbiter: grants at 0.1, 0.2, 0.3.
        assert granted == pytest.approx([0.1, 0.2, 0.3])

    def test_withdraw(self):
        env = Environment()
        gate = PumpGate(env, FCFSScheduler(), workers=1)
        holder = make_job("p")
        gate.scheduler.add(holder)
        quitter = make_job("p")
        gate.scheduler.add(quitter)

        def hold():
            yield from gate.acquire(holder, 10)
            yield env.timeout(5)
            gate.release(holder, 10)

        def quit_early():
            ev = env.timeout(1)
            yield ev
            gate.withdraw(quitter)

        env.process(hold())
        # quitter enqueues, then withdraws before being served.
        list(gate.acquire(quitter, 10))  # enqueue without waiting
        env.process(quit_early())
        env.run()
        assert not quitter.ready

    def test_grants_counted(self):
        env = Environment()
        gate = PumpGate(env, FCFSScheduler(), workers=2)
        job = make_job("p")
        gate.scheduler.add(job)

        def pump():
            for _ in range(5):
                yield from gate.acquire(job, 1)
                gate.release(job, 1)

        env.process(pump())
        env.run()
        assert gate.grants == 5


class TestNonWorkConserving:
    def test_idles_then_grants_best_ready(self):
        env = Environment()
        sched = StrideScheduler(shares={"nfs": 4, "http": 1},
                                work_conserving=False)
        gate = PumpGate(env, sched, workers=1, idle_wait=0.5)
        nfs = make_job("nfs")
        http = make_job("http")
        sched.add(nfs)
        sched.add(http)
        sched.charge(http, 0)  # keep passes equal-ish
        nfs.ready = False  # nfs has no outstanding request
        granted = []

        def pump():
            yield from gate.acquire(http, 10)
            granted.append(env.now)
            gate.release(http, 10)

        env.process(pump())
        env.run()
        # http is only admitted after the idle_wait grace period.
        assert granted and granted[0] >= 0.5
