"""Unit tests for the SEDA concurrency model in the simulator."""

import pytest

from repro.models.platform import LINUX
from repro.nest.concurrency import ALL_MODELS, SEDA, make_selector
from repro.nest.config import NestConfig
from repro.sim import Environment
from repro.simnest.clients import ClientLog, whole_file_client
from repro.simnest.server import SimNest

MB = 1_000_000


class TestSedaModel:
    def test_seda_in_model_registry(self):
        assert SEDA in ALL_MODELS
        assert make_selector("seda").choose() == "seda"

    def test_seda_serves_files(self):
        env = Environment()
        cfg = NestConfig(concurrency="seda", concurrency_models=("seda",))
        server = SimNest(env, LINUX, cfg)
        server.populate("/f", MB)
        log = ClientLog(protocol="chirp")
        env.process(whole_file_client(env, server, "chirp", ["/f"] * 3, log))
        env.run()
        assert log.total_bytes == 3 * MB
        assert set(server.stats.model_assignments) == {"seda"}

    def test_disk_stage_bounds_concurrent_misses(self):
        env = Environment()
        cfg = NestConfig(concurrency="seda", concurrency_models=("seda",),
                         transfer_workers=64)
        server = SimNest(env, LINUX, cfg)
        for i in range(8):
            server.populate(f"/cold{i}", MB, resident=False)
            log = ClientLog(protocol="chirp")
            env.process(whole_file_client(env, server, "chirp",
                                          [f"/cold{i}"], log))
        max_in_stage = [0]

        def watcher():
            while True:
                max_in_stage[0] = max(max_in_stage[0],
                                      server._seda_disk_stage.count)
                yield env.timeout(0.001)

        env.process(watcher())
        env.run(until=5.0)
        assert 0 < max_in_stage[0] <= server._seda_disk_stage.capacity

    def test_cached_reads_bypass_disk_stage(self):
        env = Environment()
        cfg = NestConfig(concurrency="seda", concurrency_models=("seda",))
        server = SimNest(env, LINUX, cfg)
        server.populate("/hot", MB, resident=True)
        # Saturate the disk stage artificially.
        hold_a = server._seda_disk_stage.request()
        hold_b = server._seda_disk_stage.request()
        log = ClientLog(protocol="chirp")
        env.process(whole_file_client(env, server, "chirp", ["/hot"], log))
        env.run(until=2.0)
        # The cached read completed even with the disk stage full.
        assert log.total_bytes == MB

    def test_thread_overload_factor_grows(self):
        env = Environment()
        server = SimNest(env, LINUX, NestConfig())
        assert server._thread_overload_factor() == 1.0
        server._active_threads = server.THREAD_OVERLOAD_THRESHOLD + 10
        assert server._thread_overload_factor() == pytest.approx(
            1.0 + 10 * server.THREAD_OVERLOAD_SLOPE
        )
