"""Integration: the protocol-selecting NestClient facade."""

import pytest

from repro.client import NestClient
from repro.nest.config import NestConfig
from repro.nest.server import NestServer


@pytest.fixture(scope="module")
def facade_server():
    server = NestServer(NestConfig(name="facade")).start()
    server.storage.mkdir("admin", "/pub")
    server.storage.acl_set("admin", "/pub", "*", "rliwd")
    yield server
    server.stop()


class TestProtocolSelection:
    @pytest.mark.parametrize("proto", ["chirp", "http", "ftp", "gridftp",
                                       "nfs"])
    def test_read_write_via_each_data_protocol(self, facade_server, proto):
        payload = f"via {proto}".encode() * 500
        credential = facade_server.ca.issue(f"/CN={proto}-user")
        with NestClient(facade_server.host, facade_server.ports,
                        data_protocol=proto, credential=credential) as client:
            client.write(f"/pub/{proto}.bin", payload)
            assert client.read(f"/pub/{proto}.bin") == payload

    def test_management_always_via_chirp(self, facade_server):
        cred = facade_server.ca.issue("/CN=mgr")
        with NestClient(facade_server.host, facade_server.ports,
                        data_protocol="http", credential=cred) as client:
            client.mkdir("/pub/managed")
            client.grant("/pub/managed", "*", "rliw")
            client.write("/pub/managed/f", b"data over http")
            assert client.stat("/pub/managed/f")["size"] == 14
            names = [e["name"] for e in client.listdir("/pub/managed")]
            assert names == ["f"]
            client.unlink("/pub/managed/f")

    def test_space_reservation_via_facade(self, facade_server):
        cred = facade_server.ca.issue("/CN=reserver")
        with NestClient(facade_server.host, facade_server.ports,
                        data_protocol="chirp", credential=cred) as client:
            lot = client.reserve_space(100_000, duration=600)
            assert lot["capacity"] == 100_000
            client.release_space(lot["lot_id"])

    def test_server_ad_readable(self, facade_server):
        from repro.classads import parse

        with NestClient(facade_server.host, facade_server.ports) as client:
            ad = parse(client.server_ad())
            assert ad.eval("Name") == "facade"

    def test_unknown_protocol_rejected(self, facade_server):
        with pytest.raises(ValueError):
            NestClient(facade_server.host, facade_server.ports,
                       data_protocol="smb")
