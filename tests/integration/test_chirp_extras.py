"""Integration: Chirp block I/O and lot attachment over the wire."""

import pytest

from repro.client import ChirpClient
from repro.client.chirp import ChirpError
from repro.nest.config import NestConfig
from repro.nest.server import NestServer


@pytest.fixture
def lots_server():
    cfg = NestConfig(name="extras", require_lots=True,
                     lot_enforcement="nest", capacity_bytes=1_000_000)
    with NestServer(cfg) as server:
        yield server


class TestBlockIo:
    def test_pwrite_pread(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.pwrite("/data/sparse", 0, b"AAAA")
            c.pwrite("/data/sparse", 4, b"BBBB")
            assert c.pread("/data/sparse", 0, 8) == b"AAAABBBB"
            assert c.pread("/data/sparse", 2, 4) == b"AABB"

    def test_pwrite_extends(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.pwrite("/data/grow", 0, b"x" * 10)
            c.pwrite("/data/grow", 10, b"y" * 10)
            assert c.stat("/data/grow")["size"] == 20

    def test_pread_clamped_at_eof(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.put("/data/short", b"abc")
            assert c.pread("/data/short", 1, 100) == b"bc"

    def test_pread_missing_file(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            with pytest.raises(ChirpError):
                c.pread("/data/ghost", 0, 10)


class TestChecksum:
    def test_crc32_matches_local(self, server):
        import zlib

        payload = bytes(range(256)) * 512
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.put("/data/sum.bin", payload)
            result = c.checksum("/data/sum.bin")
        assert result["crc32"] == zlib.crc32(payload) & 0xFFFFFFFF
        assert result["size"] == len(payload)

    def test_empty_file(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.put("/data/empty", b"")
            assert c.checksum("/data/empty") == {"crc32": 0, "size": 0}

    def test_missing_file(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            with pytest.raises(ChirpError):
                c.checksum("/data/nope")

    def test_two_servers_agree(self, server, ca):
        # The replicator's verification primitive: equal content on two
        # appliances yields equal server-side checksums.
        cfg = NestConfig(name="twin")
        with NestServer(cfg, ca=ca) as twin:
            twin.storage.mkdir("admin", "/data")
            twin.storage.acl_set("admin", "/data", "*", "rliwd")
            payload = b"same bytes everywhere" * 1000
            with ChirpClient(*server.endpoint("chirp")) as a, \
                 ChirpClient(*twin.endpoint("chirp")) as b:
                a.put("/data/f", payload)
                b.put("/data/f", payload)
                assert a.checksum("/data/f") == b.checksum("/data/f")


class TestLotAttachWire:
    def test_attach_routes_charges(self, lots_server):
        cred = lots_server.ca.issue("/CN=u")
        with ChirpClient(*lots_server.endpoint("chirp")) as c:
            c.authenticate(cred)
            general = c.lot_create(100_000, 600)
            project = c.lot_create(100_000, 600)
            c.mkdir("/proj")
            c.lot_attach(project["lot_id"], "/proj")
            c.put("/proj/data", b"p" * 50_000)
            c.put("/other", b"o" * 10_000)
            assert c.lot_stat(project["lot_id"])["used"] == 50_000
            assert c.lot_stat(general["lot_id"])["used"] == 10_000

    def test_attach_foreign_lot_rejected(self, lots_server):
        alice = lots_server.ca.issue("/CN=alice")
        bob = lots_server.ca.issue("/CN=bob")
        with ChirpClient(*lots_server.endpoint("chirp")) as ca_client:
            ca_client.authenticate(alice)
            lot = ca_client.lot_create(1000, 600)
        with ChirpClient(*lots_server.endpoint("chirp")) as cb:
            cb.authenticate(bob)
            with pytest.raises(ChirpError):
                cb.lot_attach(lot["lot_id"], "/steal")
