"""Integration: the Figure 2 scenario end to end on live servers."""

import pytest

from repro.client import ChirpClient, GridFtpClient, third_party_transfer
from repro.grid import Collector, ExecutionManager, GridJob
from repro.nest.auth import CertificateAuthority
from repro.nest.config import NestConfig
from repro.nest.server import NestServer


@pytest.fixture(scope="module")
def grid():
    """Two live sites + collector + credential, shared by the module."""
    ca = CertificateAuthority("Scenario CA")
    cred = ca.issue("/O=Test/CN=manager")
    home = NestServer(NestConfig(name="home-site"), ca=ca).start()
    remote = NestServer(
        NestConfig(name="remote-site", require_lots=True,
                   lot_enforcement="nest",
                   default_anonymous_lot_bytes=50_000_000),
        ca=ca,
    ).start()
    collector = Collector()
    collector.advertise(home.advertisement())
    collector.advertise(remote.advertisement())
    yield {"ca": ca, "cred": cred, "home": home, "remote": remote,
           "collector": collector}
    remote.stop()
    home.stop()


class TestThirdParty:
    def test_server_to_server_transfer(self, grid):
        cred = grid["cred"]
        home, remote = grid["home"], grid["remote"]
        with ChirpClient(*home.endpoint("chirp")) as c:
            c.authenticate(cred)
            if not any(e["name"] == "tp" for e in c.listdir("/")):
                c.mkdir("/tp")
            c.acl_set("/tp", "*", "rl")
            c.put("/tp/source.bin", b"T" * 123_456)
        with ChirpClient(*remote.endpoint("chirp")) as rc:
            rc.authenticate(cred)
            rc.lot_create(1_000_000, 600)
            if not any(e["name"] == "tp" for e in rc.listdir("/")):
                rc.mkdir("/tp")
        with GridFtpClient(*home.endpoint("gridftp"), credential=cred) as gs, \
             GridFtpClient(*remote.endpoint("gridftp"), credential=cred) as gd:
            third_party_transfer(gs, "/tp/source.bin", gd, "/tp/copy.bin")
        with ChirpClient(*remote.endpoint("chirp")) as rc:
            rc.authenticate(cred)
            assert rc.get("/tp/copy.bin") == b"T" * 123_456


class TestFullScenario:
    def test_six_steps(self, grid):
        cred = grid["cred"]
        home = grid["home"]
        with ChirpClient(*home.endpoint("chirp")) as c:
            c.authenticate(cred)
            if not any(e["name"] == "home" for e in c.listdir("/")):
                c.mkdir("/home")
            c.acl_set("/home", "*", "rl")
            c.put("/home/input.dat", b"IN" * 10_000)

        def double(inputs):
            return {"output.dat": inputs["input.dat"] * 2}

        manager = ExecutionManager(grid["collector"], cred)
        report = manager.run_scenario(
            home,
            jobs=[GridJob("double", inputs=("input.dat",),
                          outputs=("output.dat",), compute=double)],
        )
        # The manager must pick the remote site, not home.
        assert report.site == "remote-site"
        assert report.staged_in == ["input.dat"]
        assert report.jobs_run == ["double"]
        assert report.staged_out == ["output.dat"]
        assert report.lot_terminated
        assert all(s == "done" for s in report.dag_status.values())
        # Step 6 really removed the reservation at the remote site.
        assert report.lot_id not in grid["remote"].storage.lots.lots
        with ChirpClient(*home.endpoint("chirp")) as c:
            c.authenticate(cred)
            assert c.get("/home/output.dat") == b"IN" * 20_000

    def test_no_site_big_enough(self, grid):
        manager = ExecutionManager(grid["collector"], grid["cred"])
        with pytest.raises(RuntimeError):
            manager.find_site(10**15)

    def test_admin_default_lot_survives(self, grid):
        # The admin's default anonymous lot outlives every scenario.
        remote = grid["remote"]
        owners = {l.owner for l in remote.storage.lots.lots.values()}
        assert "anonymous" in owners


class TestDiscovery:
    def test_advertisements_refresh(self, grid):
        collector = grid["collector"]
        home = grid["home"]
        before = len(collector)
        collector.advertise(home.advertisement())  # refresh, not dup
        assert len(collector) == before

    def test_ttl_expiry(self):
        from repro.grid.discovery import Collector

        t = [0.0]
        collector = Collector(clock=lambda: t[0], default_ttl=10.0)
        from repro.classads import ClassAd

        collector.advertise(ClassAd({"Name": "ephemeral", "Type": "Storage"}))
        assert len(collector) == 1
        t[0] = 11.0
        assert len(collector) == 0
