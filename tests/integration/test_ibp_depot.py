"""Integration: the IBP dialect against a live NeST depot."""

import pytest

from repro.client.ibp import IbpClient, IbpError
from repro.nest.config import NestConfig
from repro.nest.server import NestServer
from repro.protocols.ibp import STABLE, VOLATILE


@pytest.fixture
def depot():
    cfg = NestConfig(
        name="depot", protocols=("chirp", "ibp"),
        require_lots=True, lot_enforcement="nest",
        capacity_bytes=2_000_000,
    )
    with NestServer(cfg) as server:
        with IbpClient(*server.endpoint("ibp")) as client:
            yield server, client


class TestAllocationLifecycle:
    def test_allocate_store_load(self, depot):
        _, client = depot
        caps = client.allocate(10_000, 600)
        assert client.store(caps["write"], b"first") == 5
        assert client.store(caps["write"], b" second") == 12
        assert client.load(caps["read"]) == b"first second"
        assert client.load(caps["read"], offset=6) == b"second"
        assert client.load(caps["read"], offset=0, nbytes=5) == b"first"

    def test_allocation_backed_by_lot(self, depot):
        server, client = depot
        caps = client.allocate(50_000, 600)
        info = client.probe(caps["manage"])
        assert info["size"] == 50_000 and info["type"] == STABLE
        owners = {l.owner for l in server.storage.lots.lots.values()}
        assert any(o.startswith("ibp:") for o in owners)

    def test_over_allocation_refused(self, depot):
        _, client = depot
        caps = client.allocate(100, 600)
        with pytest.raises(IbpError) as info:
            client.store(caps["write"], b"x" * 101)
        assert info.value.code == "over-allocation"
        # The refusal was clean: the allocation still works.
        assert client.store(caps["write"], b"x" * 100) == 100

    def test_capability_kinds_enforced(self, depot):
        _, client = depot
        caps = client.allocate(100, 600)
        for wrong, op in [
            (caps["read"], lambda: client.store(caps["read"], b"x")),
            (caps["write"], lambda: client.load(caps["write"])),
            (caps["read"], lambda: client.probe(caps["read"])),
        ]:
            with pytest.raises(IbpError):
                op()

    def test_forged_secret_rejected(self, depot):
        _, client = depot
        caps = client.allocate(100, 600)
        forged = caps["read"].replace("#", "#0f", 1)
        with pytest.raises(IbpError):
            client.load(forged)

    def test_refcounting_frees_at_zero(self, depot):
        server, client = depot
        caps = client.allocate(100, 600)
        client.store(caps["write"], b"shared")
        assert client.increment(caps["manage"]) == 2
        assert client.decrement(caps["manage"]) == 1
        assert client.load(caps["read"]) == b"shared"
        assert client.decrement(caps["manage"]) == 0
        with pytest.raises(IbpError):
            client.load(caps["read"])
        assert server.storage.lots.total_used() == 0

    def test_extend_stable_only(self, depot):
        _, client = depot
        stable = client.allocate(100, 10)
        before = client.probe(stable["manage"])["expires_at"]
        after = client.extend(stable["manage"], 600)
        assert after > before
        volatile = client.allocate(100, 10, atype=VOLATILE)
        with pytest.raises(IbpError) as info:
            client.extend(volatile["manage"], 600)
        assert info.value.code == "is-volatile"


class TestVolatileSemantics:
    def test_volatile_survives_until_pressure(self, depot):
        _, client = depot
        vcaps = client.allocate(500_000, 600, atype=VOLATILE)
        client.store(vcaps["write"], b"v" * 400_000)
        assert client.load(vcaps["read"], nbytes=10) == b"v" * 10
        # A big stable guarantee forces reclamation.
        client.allocate(1_900_000, 600)
        with pytest.raises(IbpError) as info:
            client.load(vcaps["read"])
        assert info.value.code == "reclaimed"

    def test_stable_guarantee_never_reclaimed(self, depot):
        _, client = depot
        scaps = client.allocate(500_000, 600)
        client.store(scaps["write"], b"s" * 400_000)
        # Asking for more than free+volatile space fails instead of
        # touching the stable allocation.
        with pytest.raises(IbpError) as info:
            client.allocate(1_900_000, 600)
        assert info.value.code == "no-space"
        assert client.load(scaps["read"], nbytes=5) == b"sssss"

    def test_status_counts(self, depot):
        _, client = depot
        client.allocate(100, 600, atype=VOLATILE)
        client.allocate(100, 600, atype=STABLE)
        status = client.status()
        assert status["volatile"] == 1
        assert status["total"] == 2_000_000


class TestValidation:
    @pytest.mark.parametrize("size,duration,atype,code", [
        (0, 60, STABLE, "bad-size"),
        (100, 0, STABLE, "bad-duration"),
        (100, 60, "permanent", "bad-type"),
    ])
    def test_bad_allocate_arguments(self, depot, size, duration, atype, code):
        _, client = depot
        with pytest.raises(IbpError) as info:
            client.allocate(size, duration, atype)
        assert info.value.code == code

    def test_namespace_hidden_from_other_protocols(self, depot):
        server, client = depot
        from repro.client import ChirpClient
        from repro.client.chirp import ChirpError

        client.allocate(100, 600)
        with ChirpClient(*server.endpoint("chirp")) as chirp_client:
            with pytest.raises(ChirpError):
                chirp_client.listdir("/.ibp")
