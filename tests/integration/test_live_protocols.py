"""Integration: every protocol against one live NeST server.

One server, one namespace, five dialects -- the core claim of the
virtual protocol layer, exercised over real sockets.
"""

import pytest

from repro.client import (
    ChirpClient,
    FtpClient,
    GridFtpClient,
    HttpClient,
    NfsClient,
)
from repro.client.chirp import ChirpError
from repro.client.http import HttpError
from repro.protocols.common import Status


class TestChirp:
    def test_put_get_round_trip(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            payload = b"native protocol" * 100
            c.put("/data/chirp.bin", payload)
            assert c.get("/data/chirp.bin") == payload

    def test_metadata_operations(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.mkdir("/data/subdir")
            c.put("/data/subdir/f", b"x")
            names = [e["name"] for e in c.listdir("/data/subdir")]
            assert names == ["f"]
            assert c.stat("/data/subdir/f")["size"] == 1
            c.rename("/data/subdir/f", "/data/subdir/g")
            assert c.stat("/data/subdir/g")["size"] == 1
            c.unlink("/data/subdir/g")
            c.rmdir("/data/subdir")

    def test_missing_file_error(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            with pytest.raises(ChirpError) as info:
                c.get("/data/never-created")
            assert info.value.status is Status.NOT_FOUND

    def test_gsi_authentication(self, server, ca):
        with ChirpClient(*server.endpoint("chirp")) as c:
            user = c.authenticate(ca.issue("/CN=tester"))
            assert user == "/CN=tester"

    def test_bad_credential_rejected(self, server):
        from repro.nest.auth import CertificateAuthority

        rogue = CertificateAuthority("Rogue CA")
        with ChirpClient(*server.endpoint("chirp")) as c:
            with pytest.raises(ChirpError):
                c.authenticate(rogue.issue("/CN=intruder"))

    def test_query_returns_classad(self, server):
        from repro.classads import parse

        with ChirpClient(*server.endpoint("chirp")) as c:
            ad = parse(c.query())
            assert ad.eval("Type") == "Storage"
            assert ad.eval("Name") == "test-nest"


class TestHttp:
    def test_round_trip(self, server):
        with HttpClient(*server.endpoint("http")) as h:
            h.put("/data/http.bin", b"h" * 5000)
            assert h.get("/data/http.bin") == b"h" * 5000
            assert h.head("/data/http.bin")["size"] == 5000
            h.delete("/data/http.bin")
            with pytest.raises(HttpError):
                h.get("/data/http.bin")

    def test_cross_protocol_visibility(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.put("/data/shared.bin", b"written by chirp")
        with HttpClient(*server.endpoint("http")) as h:
            assert h.get("/data/shared.bin") == b"written by chirp"

    def test_keepalive_multiple_requests(self, server):
        with HttpClient(*server.endpoint("http")) as h:
            for i in range(5):
                h.put(f"/data/ka-{i}", bytes([i]) * 10)
            for i in range(5):
                assert h.get(f"/data/ka-{i}") == bytes([i]) * 10


class TestFtp:
    def test_round_trip(self, server):
        with FtpClient(*server.endpoint("ftp")) as f:
            f.stor("/data/ftp.bin", b"f" * 4000)
            assert f.retr("/data/ftp.bin") == b"f" * 4000
            assert f.size("/data/ftp.bin") == 4000

    def test_directory_operations(self, server):
        with FtpClient(*server.endpoint("ftp")) as f:
            f.mkd("/data/ftpdir")
            f.cwd("/data/ftpdir")
            assert f.pwd() == "/data/ftpdir"
            f.stor("rel.bin", b"relative path")
            assert "rel.bin" in f.list()
            f.dele("rel.bin")
            f.cwd("/data")
            f.rmd("/data/ftpdir")


class TestGridFtp:
    def test_stream_mode(self, server, ca):
        with GridFtpClient(*server.endpoint("gridftp"),
                           credential=ca.issue("/CN=mover")) as g:
            g.stor("/data/g.bin", b"g" * 70_000)
            assert g.retr("/data/g.bin") == b"g" * 70_000

    def test_parallel_streams(self, server, ca):
        payload = bytes(range(256)) * 2000  # 512 KB, content-checkable
        with GridFtpClient(*server.endpoint("gridftp"),
                           credential=ca.issue("/CN=mover")) as g:
            g.set_parallelism(4)
            g.stor_parallel("/data/par.bin", payload)
            assert g.retr_parallel("/data/par.bin") == payload

    def test_anonymous_without_adat(self, server):
        # GridFTP without GSI falls back to anonymous: reads allowed.
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.put("/data/public.bin", b"open data")
        with GridFtpClient(*server.endpoint("gridftp")) as g:
            assert g.retr("/data/public.bin") == b"open data"


class TestNfs:
    def test_mount_lookup_read(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.put("/data/nfs.bin", b"n" * 20_000)
        with NfsClient(*server.endpoint("nfs")) as n:
            n.mount("/")
            fh, attrs = n.lookup_path("/data/nfs.bin")
            assert attrs["size"] == 20_000
            assert n.read_file("/data/nfs.bin") == b"n" * 20_000

    def test_block_granularity(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.put("/data/blocks.bin", bytes(range(256)) * 100)
        with NfsClient(*server.endpoint("nfs")) as n:
            n.mount("/")
            fh, _ = n.lookup_path("/data/blocks.bin")
            block = n.read_block(fh, 8192, 8192)
            assert len(block) == 8192
            assert block == (bytes(range(256)) * 100)[8192:16384]

    def test_write_and_namespace(self, server):
        with NfsClient(*server.endpoint("nfs")) as n:
            n.mount("/")
            dirfh, _ = n.lookup_path("/data")
            sub = n.mkdir(dirfh, "nfsdir")
            fh = n.create(sub, "file")
            n.write_block(fh, 0, b"over nfs")
            entries = dict(n.readdir(sub))
            assert "file" in entries
            n.remove(sub, "file")
            n.rmdir(dirfh, "nfsdir")

    def test_stale_handle(self, server):
        from repro.client.nfs import NfsError

        with NfsClient(*server.endpoint("nfs")) as n:
            n.mount("/")
            from repro.protocols import nfs as nfsproto

            with pytest.raises(NfsError):
                n.getattr(nfsproto.make_fhandle(999_999))


class TestCrossProtocolPolicy:
    def test_acl_enforced_for_every_protocol(self, server, ca):
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.authenticate(ca.issue("/CN=owner"))
            c.mkdir("/data/private")
            c.put("/data/private/secret", b"classified")
            c.acl_set("/data/private", "*", "l")  # lookup only
        with HttpClient(*server.endpoint("http")) as h:
            with pytest.raises(HttpError) as info:
                h.get("/data/private/secret")
            assert info.value.status is Status.DENIED
        with NfsClient(*server.endpoint("nfs")) as n:
            from repro.client.nfs import NfsError

            n.mount("/")
            fh, _ = n.lookup_path("/data/private/secret")
            with pytest.raises(NfsError):
                n.read_block(fh, 0)

    def test_same_bytes_through_all_protocols(self, server, ca):
        payload = bytes(range(256)) * 500
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.put("/data/everyone.bin", payload)
        with HttpClient(*server.endpoint("http")) as h:
            assert h.get("/data/everyone.bin") == payload
        with FtpClient(*server.endpoint("ftp")) as f:
            assert f.retr("/data/everyone.bin") == payload
        with GridFtpClient(*server.endpoint("gridftp"),
                           credential=ca.issue("/CN=x")) as g:
            assert g.retr("/data/everyone.bin") == payload
        with NfsClient(*server.endpoint("nfs")) as n:
            n.mount("/")
            assert n.read_file("/data/everyone.bin") == payload
