"""Threaded-vs-event parity: the protocol suites on the event path.

The event-driven architecture must be behaviourally invisible: every
Chirp and HTTP integration test that passes against the classic
thread-per-connection server must pass unchanged against the
event-driven one.  This module re-collects those suites by
inheritance; the module-level ``server`` fixture overrides the
conftest's with an events-mode appliance, so any divergence between
the two architectures fails here under the original test's name.
"""

import pytest

from repro.client import ChirpClient
from repro.nest.config import NestConfig
from repro.nest.server import NestServer

# Underscore aliases so pytest does not re-collect the originals in
# this module (they already run, threaded, in test_live_protocols).
from tests.integration.test_live_protocols import TestChirp as _TestChirp
from tests.integration.test_live_protocols import TestHttp as _TestHttp


@pytest.fixture
def server(ca):
    srv = NestServer(
        NestConfig(name="test-nest", concurrency_server="events"), ca=ca)
    srv.start()
    srv.storage.mkdir("admin", "/data")
    srv.storage.acl_set("admin", "/data", "*", "rliwd")
    yield srv
    report = srv.stop()
    assert report["forced"] == 0  # event drain retired every connection


class TestChirpOnEvents(_TestChirp):
    """The full Chirp suite, served by the event loop."""


class TestHttpOnEvents(_TestHttp):
    """The full HTTP suite, served by the event loop."""


class TestEventPathEngaged:
    def test_requests_actually_flow_through_the_event_loop(self, server):
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.put("/data/evt.bin", b"e" * 4096)
            assert c.get("/data/evt.bin") == b"e" * 4096
        assert server._eventloop is not None
        # The parity above means nothing if the requests silently fell
        # back to threads -- prove the dispatches happened.
        assert server._eventloop.dispatches > 0
        assert server._eventloop.adopted > 0
