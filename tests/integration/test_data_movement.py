"""Integration: Chirp third-party puts and Kangaroo spooled movement."""

import time

import pytest

from repro.client import ChirpClient
from repro.client.chirp import ChirpError
from repro.grid.kangaroo import KangarooMover
from repro.nest.config import NestConfig
from repro.nest.server import NestServer


@pytest.fixture
def pair():
    src = NestServer(NestConfig(name="src")).start()
    dst = NestServer(NestConfig(name="dst")).start()
    for server in (src, dst):
        server.storage.mkdir("admin", "/d")
        server.storage.acl_set("admin", "/d", "*", "rliwd")
    yield src, dst
    dst.stop()
    src.stop()


class TestChirpThirdParty:
    def test_thirdput_moves_server_to_server(self, pair):
        src, dst = pair
        with ChirpClient(*src.endpoint("chirp")) as c:
            c.put("/d/source.bin", b"3rd party" * 1000)
            moved = c.thirdput("/d/source.bin", dst.host,
                               dst.ports["chirp"], "/d/copy.bin")
            assert moved == 9000
        with ChirpClient(*dst.endpoint("chirp")) as c:
            assert c.get("/d/copy.bin") == b"3rd party" * 1000

    def test_thirdput_missing_source(self, pair):
        src, dst = pair
        with ChirpClient(*src.endpoint("chirp")) as c:
            with pytest.raises(ChirpError):
                c.thirdput("/d/ghost", dst.host, dst.ports["chirp"],
                           "/d/never")

    def test_thirdput_unreachable_destination(self, pair):
        src, _ = pair
        with ChirpClient(*src.endpoint("chirp")) as c:
            c.put("/d/f", b"x")
            with pytest.raises(ChirpError):
                c.thirdput("/d/f", "127.0.0.1", 1, "/d/x")  # closed port


class TestKangaroo:
    def test_spooled_delivery(self, pair):
        _, dst = pair
        with KangarooMover(dst.host, dst.ports["chirp"]) as mover:
            for i in range(5):
                mover.put(f"/d/k-{i}", bytes([i]) * 100)
            assert mover.flush(10)
        assert mover.stats.delivered == 5
        with ChirpClient(*dst.endpoint("chirp")) as c:
            for i in range(5):
                assert c.get(f"/d/k-{i}") == bytes([i]) * 100

    def test_put_returns_before_delivery(self, pair):
        _, dst = pair
        with KangarooMover(dst.host, dst.ports["chirp"]) as mover:
            t0 = time.monotonic()
            mover.put("/d/big", b"B" * 2_000_000)
            handoff = time.monotonic() - t0
            assert handoff < 0.1  # the Kangaroo hand-off is instant
            assert mover.flush(15)

    def test_retries_until_destination_appears(self):
        # Reserve a port, keep the destination down, spool, then start
        # the server: the mover must deliver once it comes up.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        mover = KangarooMover("127.0.0.1", port, retry_delay=0.1,
                              max_attempts=50)
        try:
            mover.put("/late.bin", b"delayed delivery")
            time.sleep(0.3)  # a few failed attempts accumulate
            assert mover.stats.retries > 0
            server = NestServer(NestConfig(name="late"),
                                ports={"chirp": port})
            server.start()
            try:
                assert mover.flush(15)
                assert mover.stats.delivered == 1
                with ChirpClient("127.0.0.1", port) as c:
                    assert c.get("/late.bin") == b"delayed delivery"
            finally:
                server.stop()
        finally:
            mover.stop()

    def test_gives_up_after_max_attempts(self):
        mover = KangarooMover("127.0.0.1", 1, retry_delay=0.01,
                              max_attempts=3)
        try:
            mover.put("/doomed", b"x")
            assert mover.flush(10)
            assert mover.stats.failed == ["/doomed"]
        finally:
            mover.stop()
