"""Fixtures for live-server integration tests."""

import pytest

from repro.nest.auth import CertificateAuthority
from repro.nest.config import NestConfig
from repro.nest.server import NestServer


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority("Test Grid CA")


@pytest.fixture
def server(ca):
    """A live NeST on ephemeral ports with a /data directory the
    anonymous protocols can write into."""
    srv = NestServer(NestConfig(name="test-nest"), ca=ca)
    srv.start()
    srv.storage.mkdir("admin", "/data")
    srv.storage.acl_set("admin", "/data", "*", "rliwd")
    yield srv
    srv.stop()
