"""Acceptance: one distributed trace across the whole deployment.

The ISSUE-8 scenario end to end: a federation of live appliances plus
a two-shard (multi-process) NeST, a replicator-sourced copy fanned out
site-to-site, and a federated GET served by a shard worker -- all under
one client root span.  Stitching the client's, the sites', and the
shard parent's trace documents must yield ONE valid Chrome trace whose
single trace id spans at least three distinct processes, while the
shard parent's fleet ``/metrics`` shows shard-aggregated counters and
the SLO gauges.
"""

from __future__ import annotations

import json
import time
import urllib.request
import zlib

import pytest

from repro.classads import ClassAd
from repro.classads.parser import parse_expression
from repro.client.http import HttpClient
from repro.nest.config import NestConfig
from repro.nest.shard import ShardGroup, shard_root
from repro.obs.export_chrome import (
    merge_chrome_traces,
    spans_to_chrome,
    validate_trace,
)
from repro.obs.fleet import merge_fleet_trace
from repro.obs.spans import SpanRecorder, Tracer
from repro.replica.catalog import ReplicaCatalog
from repro.replica.federation import FederatedClient
from repro.replica.fleet import Fleet
from repro.replica.placement import make_policy
from repro.replica.replicator import Replicator

pytestmark = pytest.mark.timeout(180)

LOGICAL = "trace.bin"
PAYLOAD = b"one trace to bind them" * 700


def _shard_site_ad(name: str, host: str, http_port: int,
                   chirp_port: int) -> ClassAd:
    """A hand-built availability ad for the shard group.

    The shard parent is not a NestServer, so it cannot call
    ``build_advertisement``; the ad points the federation's data
    protocol at worker 0's *direct* HTTP port (the shared Chirp port
    load-balances across workers, which would lose shard addressing).
    An absurd ThroughputMBps makes the ranked read hit the shards
    first.
    """
    ad = ClassAd({
        "Type": "Storage",
        "Name": name,
        "Host": host,
        "Protocols": ["chirp", "http"],
        "GrantableSpace": 1 << 30,
        "ThroughputMBps": 1_000_000.0,
        "HttpPort": http_port,
        "ChirpPort": chirp_port,
    })
    ad["Requirements"] = parse_expression(
        'other.Type == "Request" && other.RequestedSpace <= my.GrantableSpace')
    return ad


@pytest.fixture
def deployment():
    """Two federated appliances + a live two-shard group, one collector."""
    fleet = Fleet(sites=2, name_prefix="site", ad_ttl=10.0,
                  readvertise_interval=0.25)
    shard_config = NestConfig(name="shardsite", protocols=("chirp", "http"),
                              telemetry_interval=0.1)
    with fleet, ShardGroup(2, config=shard_config) as group:
        yield fleet, group


def _await(predicate, timeout=10.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return predicate()


def test_one_merged_trace_across_the_deployment(deployment, tmp_path):
    fleet, group = deployment
    prefix = shard_root(0)  # world-writable on worker 0: shared replica dir
    catalog = ReplicaCatalog(collector=fleet.collector)
    replicator = Replicator(
        catalog, fleet.collector, fleet.credential,
        policy=make_policy("throughput"), target_count=2, prefix=prefix)
    # Anonymous federated client over HTTP: the shard workers trust no
    # grid CA, and the replica prefix is world-readable everywhere.
    client = FederatedClient(catalog, fleet.collector, replicator,
                             credential=None, data_protocol="http")

    recorder = SpanRecorder()
    root = Tracer(recorder=recorder, service="acceptance").start_trace("job")
    path = replicator.path_for(LOGICAL)
    with root, client:
        # 1. Replicator-sourced copies: primary PUT to the best fleet
        #    site, then a site-to-site third-party copy.
        reports = replicator.store(LOGICAL, PAYLOAD)
        assert all(r.ok for r in reports)
        assert sorted(r.site for r in
                      catalog.valid_locations(LOGICAL)) == fleet.names()

        # 2. Hand-place a shard copy, then advertise the shard group
        #    as a (fastest) federation site.  Advertising only now
        #    keeps the replicator's placement off the shard workers.
        host, http_port = group.direct_http_endpoint(0)
        with HttpClient(host, http_port) as direct:
            direct.put(path, PAYLOAD)
        catalog.register(LOGICAL, "shard-site", path, size=len(PAYLOAD))
        catalog.mark_valid(LOGICAL, "shard-site",
                           checksum=zlib.crc32(PAYLOAD) & 0xFFFFFFFF,
                           size=len(PAYLOAD))
        fleet.collector.advertise(
            _shard_site_ad("shard-site", host, http_port,
                           group.endpoint()[1]),
            ttl=60.0)

        # 3. The federated GET: ranked by ThroughputMBps, it must be
        #    served by shard worker 0.
        assert client.resolve(LOGICAL)[0] == "shard-site"
        assert client.read(LOGICAL) == PAYLOAD

    # The worker's request spans travel pipe -> parent telemetry store.
    assert _await(lambda: [s for _, _, spans in group.fleet_spans().values()
                           for s in spans
                           if s.get("trace_id") == root.trace_id]), \
        "shard worker spans never reached the parent"

    # -- stitch: client + federation + each site + the shard parent ---------
    docs = [
        spans_to_chrome(recorder, service="acceptance", pid=1),
        spans_to_chrome(replicator.obs.recorder, service="federation", pid=2),
        merge_fleet_trace(group.fleet_spans()),
    ]
    for offset, name in enumerate(fleet.names()):
        docs.append(spans_to_chrome(fleet.server(name).obs.recorder,
                                    service=name, pid=11 + offset))
    merged = merge_chrome_traces(docs)
    assert validate_trace(merged) == []

    events = [e for e in merged["traceEvents"] if e.get("ph") == "X"]
    traced_pids = {e["pid"] for e in events
                   if e.get("args", {}).get("trace_id") == root.trace_id}
    # One trace id across client, federation machinery, both fleet
    # sites (primary PUT + third-party copy), and a shard worker.
    assert len(traced_pids) >= 3, f"trace only spans {traced_pids}"
    worker_pids = {w.pid for w in group.workers}
    assert traced_pids & worker_pids, "no shard worker joined the trace"
    assert {11, 12} <= traced_pids, "a fleet site dropped out of the trace"

    # -- the shard parent's merged /metrics ---------------------------------
    base = f"http://{group.mgmt.host}:{group.mgmt.port}"

    def scrape():
        text = urllib.request.urlopen(base + "/metrics").read().decode()
        wanted = ('shard="0"', 'shard="1"', "nest_requests_total",
                  "slo_error_budget_remaining")
        return text if all(n in text for n in wanted) else ""

    metrics = _await(scrape)
    assert 'shard="0"' in metrics and 'shard="1"' in metrics
    assert "nest_requests_total" in metrics
    assert "slo_error_budget_remaining" in metrics

    # -- the operator path: `repro trace collect` over live endpoints -------
    from repro.cli import main as cli_main

    targets = [f"{group.mgmt.host}:{group.mgmt.port}"]
    for name in fleet.names():
        server = fleet.server(name)
        targets.append(f"{server.mgmt.host}:{server.ports['mgmt']}")
    out = tmp_path / "trace.json"
    rc = cli_main(["trace", "collect", *targets,
                   "--trace-id", root.trace_id, "-o", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert validate_trace(doc) == []
    collected = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert collected
    assert {e["args"]["trace_id"] for e in collected} == {root.trace_id}
