"""Integration: the native JBOS bunch over real sockets."""

import time

import pytest

from repro.client import (
    ChirpClient,
    FtpClient,
    GridFtpClient,
    HttpClient,
    NfsClient,
)
from repro.jbos import JbosManager, Throttle
from repro.nest.auth import CertificateAuthority


@pytest.fixture(scope="module")
def bunch():
    ca = CertificateAuthority("JBOS CA")
    mgr = JbosManager(ca=ca).start()
    mgr.store.mkdir("/pub")
    mgr.store.write("/pub/seed.bin", b"seed" * 1000)
    yield mgr, ca
    mgr.stop()


class TestBunch:
    def test_every_native_server_serves(self, bunch):
        mgr, ca = bunch
        with ChirpClient(mgr.host, mgr.ports["chirp"]) as c:
            assert c.get("/pub/seed.bin") == b"seed" * 1000
        with HttpClient(mgr.host, mgr.ports["http"]) as h:
            assert h.get("/pub/seed.bin") == b"seed" * 1000
        with FtpClient(mgr.host, mgr.ports["ftp"]) as f:
            assert f.retr("/pub/seed.bin") == b"seed" * 1000
        with GridFtpClient(mgr.host, mgr.ports["gridftp"],
                           credential=ca.issue("/CN=u")) as g:
            assert g.retr("/pub/seed.bin") == b"seed" * 1000
        with NfsClient(mgr.host, mgr.ports["nfs"]) as n:
            n.mount("/")
            assert n.read_file("/pub/seed.bin") == b"seed" * 1000

    def test_shared_store_across_servers(self, bunch):
        mgr, _ca = bunch
        with HttpClient(mgr.host, mgr.ports["http"]) as h:
            h.put("/pub/crosswrite.bin", b"from http")
        with FtpClient(mgr.host, mgr.ports["ftp"]) as f:
            assert f.retr("/pub/crosswrite.bin") == b"from http"

    def test_no_lot_support_anywhere(self, bunch):
        # JBOS has no lots: the chirpd rejects lot operations.
        from repro.client.chirp import ChirpError

        mgr, _ca = bunch
        with ChirpClient(mgr.host, mgr.ports["chirp"]) as c:
            with pytest.raises(ChirpError):
                c.lot_create(1000, 60)

    def test_gridftp_eblock_mode(self, bunch):
        mgr, ca = bunch
        with GridFtpClient(mgr.host, mgr.ports["gridftp"],
                           credential=ca.issue("/CN=u")) as g:
            g.command("MODE E", expect=200)
            # The native daemon speaks single-stream eblock via PASV.
            import socket

            from repro.protocols import ftp as ftpproto
            from repro.protocols import gridftp as gftpproto

            _, text = g.command("PASV", expect=ftpproto.PASSIVE)
            host, port = ftpproto.parse_pasv_reply(text)
            g.command("RETR /pub/seed.bin", expect=ftpproto.OPENING_DATA)
            conn = socket.create_connection((host, port), timeout=10)
            stream = conn.makefile("rb")
            data = bytearray()
            for offset, payload in gftpproto.iter_blocks(stream):
                data[offset:offset + len(payload)] = payload
            stream.close()
            conn.close()
            g._expect(ftpproto.TRANSFER_OK)
            assert bytes(data) == b"seed" * 1000


class TestThrottleModule:
    def test_throttle_caps_one_server_only(self):
        ca = CertificateAuthority()
        throttled = JbosManager(
            protocols=("http", "ftp"),
            throttles={"http": Throttle(200_000, burst=20_000)},
            ca=ca,
        ).start()
        try:
            throttled.store.mkdir("/d")
            throttled.store.write("/d/f", b"z" * 200_000)

            with HttpClient(throttled.host, throttled.ports["http"]) as h:
                t0 = time.monotonic()
                h.get("/d/f")
                http_time = time.monotonic() - t0
            with FtpClient(throttled.host, throttled.ports["ftp"]) as f:
                t0 = time.monotonic()
                f.retr("/d/f")
                ftp_time = time.monotonic() - t0
            # HTTP is paced to ~1s; FTP is unconstrained.
            assert http_time > 0.5
            assert ftp_time < 0.5 * http_time
        finally:
            throttled.stop()
