"""Fixtures for the replica-federation tests."""

import pytest

from repro.faults import FaultPlan
from repro.replica.fleet import Fleet


@pytest.fixture
def fleet3():
    """Three live appliances, fast heartbeats, short TTLs."""
    with Fleet(sites=3, name_prefix="site", ad_ttl=2.0,
               readvertise_interval=0.25) as fleet:
        yield fleet


@pytest.fixture
def fleet4():
    """Four live appliances, each carrying a (initially empty)
    fault plan so tests can break connections mid-run."""
    plans = {f"site-{i}": FaultPlan() for i in range(4)}
    with Fleet(sites=4, name_prefix="site", ad_ttl=2.0,
               readvertise_interval=0.25, fault_plans=plans) as fleet:
        yield fleet
