"""Unit tests for the replica catalog (no live servers)."""

import pytest

from repro.grid.discovery import Collector
from repro.replica.catalog import (
    COPYING,
    SUSPECT,
    VALID,
    ReplicaCatalog,
    replica_request_ad,
)


class TestLifecycle:
    def test_register_starts_copying(self):
        cat = ReplicaCatalog()
        r = cat.register("f", "s1", "/replicas/f", size=10)
        assert r.state == COPYING
        assert cat.valid_locations("f") == []
        assert cat.replica_count("f") == 0

    def test_mark_valid_records_checksum(self):
        cat = ReplicaCatalog()
        cat.register("f", "s1", "/replicas/f")
        r = cat.mark_valid("f", "s1", checksum=0xABCD, size=42)
        assert (r.state, r.checksum, r.size) == (VALID, 0xABCD, 42)
        assert cat.replica_count("f") == 1

    def test_suspect_leaves_the_read_set(self):
        cat = ReplicaCatalog()
        cat.register("f", "s1", "/replicas/f")
        cat.mark_valid("f", "s1")
        cat.mark_suspect("f", "s1")
        assert cat.valid_locations("f") == []
        assert [r.state for r in cat.locations("f")] == [SUSPECT]

    def test_unknown_transition_raises(self):
        cat = ReplicaCatalog()
        with pytest.raises(KeyError):
            cat.mark_valid("ghost", "s1")

    def test_invalid_state_rejected(self):
        cat = ReplicaCatalog()
        with pytest.raises(ValueError):
            cat.register("f", "s1", "/replicas/f", state="limbo")

    def test_drop_and_drop_site(self):
        cat = ReplicaCatalog()
        for site in ("s1", "s2"):
            cat.register("a", site, "/replicas/a")
            cat.register("b", site, "/replicas/b")
        cat.drop("a", "s1")
        assert cat.sites("a") == {"s2"}
        assert cat.drop_site("s2") == 2
        assert cat.logicals() == ["b"]
        assert cat.sites("b") == {"s1"}


class TestDeficits:
    def test_counts_only_valid(self):
        cat = ReplicaCatalog()
        cat.register("f", "s1", "/replicas/f")
        cat.mark_valid("f", "s1")
        cat.register("f", "s2", "/replicas/f")  # still copying
        assert cat.deficits(3) == {"f": 2}

    def test_satisfied_files_absent(self):
        cat = ReplicaCatalog()
        for site in ("s1", "s2"):
            cat.register("f", site, "/replicas/f")
            cat.mark_valid("f", site)
        assert cat.deficits(2) == {}


class TestAdvertisement:
    def test_ads_track_mutations(self):
        collector = Collector()
        cat = ReplicaCatalog(collector=collector)
        cat.register("f", "s1", "/replicas/f")
        ad = collector.lookup("replica::f")
        assert ad.eval("ReplicaCount") == 0  # copying != valid
        cat.mark_valid("f", "s1", size=7)
        ad = collector.lookup("replica::f")
        assert ad.eval("ReplicaCount") == 1
        assert list(ad.eval("Locations")) == ["s1"]
        assert ad.eval("Size") == 7

    def test_last_drop_withdraws(self):
        collector = Collector()
        cat = ReplicaCatalog(collector=collector)
        cat.register("f", "s1", "/replicas/f")
        cat.drop("f", "s1")
        assert collector.lookup("replica::f") is None

    def test_matchmaking_on_replica_count(self):
        collector = Collector()
        cat = ReplicaCatalog(collector=collector)
        for i, site in enumerate(("s1", "s2", "s3")):
            cat.register("popular", site, "/replicas/popular")
            cat.mark_valid("popular", site)
        cat.register("rare", "s1", "/replicas/rare")
        cat.mark_valid("rare", "s1")
        # An execution manager asking for >= 2 copies finds only the
        # well-replicated file; ranking prefers more copies.
        matches = collector.query(replica_request_ad(min_replicas=2))
        assert [str(ad.eval("LogicalName")) for ad in matches] == ["popular"]
        everything = collector.query(replica_request_ad(min_replicas=1))
        assert [str(ad.eval("LogicalName")) for ad in everything] == [
            "popular", "rare"]

    def test_matchmaking_by_logical_name(self):
        collector = Collector()
        cat = ReplicaCatalog(collector=collector)
        for name in ("a", "b"):
            cat.register(name, "s1", f"/replicas/{name}")
            cat.mark_valid(name, "s1")
        match = collector.locate(replica_request_ad(logical="b"))
        assert str(match.eval("LogicalName")) == "b"

    def test_storage_requests_never_match_replica_ads(self):
        # The two ad families live in one collector; a space request
        # must not accidentally match a ReplicaSet ad.
        from repro.nest.advertise import storage_request_ad

        collector = Collector()
        cat = ReplicaCatalog(collector=collector)
        cat.register("f", "s1", "/replicas/f")
        cat.mark_valid("f", "s1")
        assert collector.query(storage_request_ad(1)) == []
