"""Live tests: third-party fan-out, verification, and repair."""

import pytest

from repro.replica.replicator import ReplicationError

pytestmark = pytest.mark.timeout(120)


class TestStore:
    def test_store_reaches_target_count(self, fleet3):
        catalog, replicator, client = fleet3.federate(target_count=3)
        with replicator, client:
            reports = replicator.store("data.bin", b"d" * 20_000)
            assert all(r.ok for r in reports)
            valid = catalog.valid_locations("data.bin")
            assert len(valid) == 3
            # One copy per site, every copy verified with a checksum.
            assert {r.site for r in valid} == set(fleet3.names())
            assert len({r.checksum for r in valid}) == 1
            assert all(r.checksum is not None for r in valid)

    def test_copies_are_readable_everywhere(self, fleet3):
        from repro.client.chirp import ChirpClient

        catalog, replicator, client = fleet3.federate(target_count=3)
        payload = b"every site serves this" * 500
        with replicator, client:
            replicator.store("shared.bin", payload)
            path = replicator.path_for("shared.bin")
            for name in fleet3.names():
                with ChirpClient(*fleet3.server(name).endpoint("chirp")) as c:
                    assert c.get(path) == payload

    def test_replicate_is_idempotent_at_target(self, fleet3):
        catalog, replicator, client = fleet3.federate(target_count=2)
        with replicator, client:
            replicator.store("once.bin", b"x" * 1000)
            assert replicator.replicate("once.bin") == []

    def test_bad_logical_name_rejected(self, fleet3):
        catalog, replicator, client = fleet3.federate()
        with replicator, client:
            for bad in ("../escape", "a/b", "", ".hidden"):
                with pytest.raises(ValueError):
                    replicator.path_for(bad)

    def test_replicate_without_source_raises(self, fleet3):
        catalog, replicator, client = fleet3.federate()
        with replicator, client:
            with pytest.raises(ReplicationError):
                replicator.replicate("never-stored.bin")


class TestRepair:
    def test_dead_site_dropped_and_refilled(self, fleet4):
        catalog, replicator, client = fleet4.federate(target_count=3)
        with replicator, client:
            replicator.store("heal.bin", b"h" * 10_000)
            victim = sorted(catalog.sites("heal.bin"))[0]
            fleet4.kill(victim)  # withdraws the ad on the way down
            report = replicator.repair_once()
            assert victim in report.dead_sites
            assert report.dropped == 1
            assert report.healed == 1
            valid = catalog.valid_locations("heal.bin")
            assert len(valid) == 3
            assert victim not in {r.site for r in valid}

    def test_repair_is_quiescent_when_healthy(self, fleet3):
        catalog, replicator, client = fleet3.federate(target_count=3)
        with replicator, client:
            replicator.store("ok.bin", b"k" * 1000)
            report = replicator.repair_once()
            assert report.dropped == 0
            assert report.copies == []
            assert report.dead_sites == []

    def test_deficit_survives_until_capacity_returns(self, fleet3):
        # 3 sites, factor 3: losing one leaves an unfillable deficit
        # (no fourth site), which must persist -- not crash the loop.
        catalog, replicator, client = fleet3.federate(target_count=3)
        with replicator, client:
            replicator.store("tight.bin", b"t" * 1000)
            victim = sorted(catalog.sites("tight.bin"))[0]
            fleet3.kill(victim)
            report = replicator.repair_once()
            assert report.dropped == 1
            assert report.healed == 0
            assert catalog.deficits(3) == {"tight.bin": 1}

    def test_suspect_on_live_site_reverifies(self, fleet3):
        catalog, replicator, client = fleet3.federate(target_count=2)
        with replicator, client:
            replicator.store("sus.bin", b"s" * 1000)
            site = sorted(catalog.sites("sus.bin"))[0]
            catalog.mark_suspect("sus.bin", site)
            report = replicator.repair_once()
            assert report.recovered == 1
            assert len(catalog.valid_locations("sus.bin")) == 2
