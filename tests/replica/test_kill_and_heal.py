"""Acceptance: kill a NeST under fault injection mid-workload.

Four appliances, replication factor 3.  One site -- the one holding
the most replicas -- is killed mid-workload *under a fault plan* (its
open connections start resetting before the listener dies, the way a
crashing machine actually behaves).  The background repair loop must
restore three valid copies of every file on the survivors, and the
federated client must complete every read and write throughout with
zero client-visible errors, every surviving copy passing the Chirp
checksum verb.
"""

import time
import zlib

import pytest

from repro.client.chirp import ChirpClient
from repro.faults import FaultRule
from repro.faults.plan import RESET

pytestmark = pytest.mark.timeout(120)

FACTOR = 3
FILES = 5
FILE_BYTES = 32 * 1024


def _payloads():
    return {
        f"work-{i:02d}.dat": bytes([(i * 37) % 251]) * FILE_BYTES
        for i in range(FILES)
    }


def test_fleet_heals_with_zero_client_errors(fleet4):
    catalog, replicator, client = fleet4.federate(
        target_count=FACTOR, repair_interval=0.2)
    payloads = _payloads()
    errors: list[str] = []

    def read_all() -> None:
        """One full read pass; any exception or wrong byte is a
        client-visible error."""
        for logical, expected in payloads.items():
            try:
                got = client.read(logical)
            except Exception as exc:  # noqa: BLE001 - that's the assertion
                errors.append(f"read {logical}: {exc!r}")
                continue
            if got != expected:
                errors.append(f"read {logical}: wrong bytes")

    with replicator, client:
        # -- seed the namespace at factor 3 -------------------------------
        for logical, data in payloads.items():
            try:
                client.write(logical, data)
            except Exception as exc:  # noqa: BLE001
                errors.append(f"write {logical}: {exc!r}")
        assert errors == []
        assert catalog.deficits(FACTOR) == {}
        read_all()
        assert errors == []

        # -- kill the worst-case site under its fault plan -----------------
        load: dict[str, int] = {}
        for logical in catalog.logicals():
            for replica in catalog.locations(logical):
                load[replica.site] = load.get(replica.site, 0) + 1
        victim = max(sorted(load), key=lambda s: load[s])
        assert load[victim] > 0
        plan = fleet4.server(victim).faults
        # Every connection to the victim now dies with ECONNRESET, in
        # both directions, forever -- the crash begins...
        plan.rules.append(FaultRule(op="read", action=RESET,
                                    connections=None, times=None))
        plan.rules.append(FaultRule(op="write", action=RESET,
                                    connections=None, times=None))
        # ...and the workload keeps running against the dying fleet.
        read_all()
        fleet4.kill(victim)
        read_all()
        assert errors == []

        # -- the repair loop restores the factor on the survivors ----------
        deadline = time.monotonic() + 60.0
        while catalog.deficits(FACTOR) and time.monotonic() < deadline:
            read_all()  # client traffic continues while healing
            time.sleep(0.1)
        assert catalog.deficits(FACTOR) == {}, "fleet did not heal in time"
        read_all()
        assert errors == [], f"client-visible errors: {errors}"

        # -- every surviving copy is on a live site and checksums clean ----
        survivors = set(fleet4.names()) - {victim}
        for logical, expected in payloads.items():
            valid = catalog.valid_locations(logical)
            assert len(valid) == FACTOR
            sites = {r.site for r in valid}
            assert victim not in sites
            assert sites <= survivors
            want = zlib.crc32(expected) & 0xFFFFFFFF
            for replica in valid:
                server = fleet4.server(replica.site)
                with ChirpClient(*server.endpoint("chirp")) as c:
                    result = c.checksum(replica.path)
                assert result == {"crc32": want, "size": FILE_BYTES}, (
                    f"{logical} on {replica.site}")

        # The injected faults really fired: the kill was not a clean
        # drain but a crash with connections mid-flight.
        assert plan.fired() > 0
