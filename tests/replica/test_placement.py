"""Unit tests for the placement policies (fake ads, no live servers)."""

import pytest

from repro.classads import parse
from repro.grid.discovery import Collector
from repro.replica.placement import (
    LoadAwarePlacement,
    RandomKPlacement,
    SpaceWeightedPlacement,
    ThroughputWeightedPlacement,
    make_policy,
    throughput_ranked_sites,
)


def site_ad(name, grantable, mbps=None, protocols=("chirp", "gridftp"),
            queue_depth=None, degraded=None):
    ad = parse(
        '[ Type = "Storage"; Requirements = other.Type == "Request" '
        "&& other.RequestedSpace <= my.GrantableSpace ]"
    )
    ad["Name"] = name
    ad["Host"] = "127.0.0.1"
    ad["ChirpPort"] = 9000
    ad["GrantableSpace"] = grantable
    ad["Protocols"] = list(protocols)
    if mbps is not None:
        ad["ThroughputMBps"] = mbps
    if queue_depth is not None:
        ad["QueueDepth"] = queue_depth
    if degraded is not None:
        ad["SloDegraded"] = degraded
    return ad


@pytest.fixture
def collector():
    c = Collector()
    c.advertise(site_ad("small", 10_000, mbps=5.0))
    c.advertise(site_ad("medium", 1_000_000, mbps=50.0))
    c.advertise(site_ad("large", 100_000_000, mbps=20.0))
    return c


class TestCandidates:
    def test_excludes_current_holders(self, collector):
        policy = RandomKPlacement()
        names = {str(ad.eval("Name"))
                 for ad in policy.candidates(collector, 100, exclude=("large",))}
        assert names == {"small", "medium"}

    def test_excludes_sites_too_small(self, collector):
        policy = RandomKPlacement()
        names = {str(ad.eval("Name"))
                 for ad in policy.candidates(collector, 500_000)}
        assert names == {"medium", "large"}

    def test_requires_gridftp(self, collector):
        collector.advertise(site_ad("no-gftp", 10**9,
                                    protocols=("chirp", "http")))
        policy = RandomKPlacement()
        names = {str(ad.eval("Name"))
                 for ad in policy.candidates(collector, 100)}
        assert "no-gftp" not in names


class TestRandomK:
    def test_seeded_and_distinct(self, collector):
        a = RandomKPlacement(seed=42).place(collector, 100, 2)
        b = RandomKPlacement(seed=42).place(collector, 100, 2)
        assert [str(x.eval("Name")) for x in a] == \
               [str(x.eval("Name")) for x in b]
        assert len({str(x.eval("Name")) for x in a}) == 2

    def test_k_larger_than_pool(self, collector):
        chosen = RandomKPlacement().place(collector, 100, 10)
        assert len(chosen) == 3


class TestSpaceWeighted:
    def test_prefers_empty_sites(self):
        c = Collector()
        c.advertise(site_ad("huge", 10**12))
        c.advertise(site_ad("tiny", 10**3))
        firsts = [
            str(SpaceWeightedPlacement(seed=s).place(c, 100, 1)[0].eval("Name"))
            for s in range(20)
        ]
        # A million-to-one weight ratio: the empty site should win
        # essentially always.
        assert firsts.count("huge") >= 19

    def test_without_replacement(self, collector):
        chosen = SpaceWeightedPlacement(seed=1).place(collector, 100, 3)
        assert len({str(x.eval("Name")) for x in chosen}) == 3


class TestThroughputWeighted:
    def test_ranks_by_measured_throughput(self, collector):
        chosen = ThroughputWeightedPlacement().place(collector, 100, 3)
        assert [str(x.eval("Name")) for x in chosen] == \
               ["medium", "large", "small"]

    def test_unmeasured_sites_rank_last_by_space(self):
        c = Collector()
        c.advertise(site_ad("cold-big", 10**9))
        c.advertise(site_ad("cold-small", 10**6))
        c.advertise(site_ad("warm", 10**6, mbps=1.0))
        chosen = ThroughputWeightedPlacement().place(c, 100, 3)
        assert [str(x.eval("Name")) for x in chosen] == \
               ["warm", "cold-big", "cold-small"]


class TestSloDegradedExclusion:
    def test_degraded_sites_never_chosen(self, collector):
        collector.advertise(site_ad("burning", 10**9, mbps=99.0,
                                    degraded=True))
        for policy in (RandomKPlacement(), SpaceWeightedPlacement(),
                       ThroughputWeightedPlacement(), LoadAwarePlacement()):
            names = {str(ad.eval("Name"))
                     for ad in policy.place(collector, 100, 10)}
            assert "burning" not in names, policy.name

    def test_healthy_flag_is_not_exclusion(self, collector):
        collector.advertise(site_ad("recovered", 10**9, degraded=False))
        names = {str(ad.eval("Name"))
                 for ad in RandomKPlacement().candidates(collector, 100)}
        assert "recovered" in names


class TestLoadAware:
    def test_idlest_site_first(self):
        c = Collector()
        c.advertise(site_ad("busy", 10**6, mbps=80.0, queue_depth=9))
        c.advertise(site_ad("calm", 10**6, mbps=5.0, queue_depth=0))
        c.advertise(site_ad("mild", 10**6, mbps=50.0, queue_depth=3))
        chosen = LoadAwarePlacement().place(c, 100, 3)
        assert [str(x.eval("Name")) for x in chosen] == \
               ["calm", "mild", "busy"]

    def test_ties_break_by_throughput_then_space(self):
        c = Collector()
        c.advertise(site_ad("slow", 10**6, mbps=1.0, queue_depth=0))
        c.advertise(site_ad("fast", 10**6, mbps=40.0, queue_depth=0))
        c.advertise(site_ad("roomy", 10**9, queue_depth=0))
        chosen = LoadAwarePlacement().place(c, 100, 3)
        assert [str(x.eval("Name")) for x in chosen] == \
               ["fast", "slow", "roomy"]

    def test_unadvertised_queue_counts_as_idle(self, collector):
        collector.advertise(site_ad("swamped", 10**9, queue_depth=50))
        chosen = LoadAwarePlacement().place(collector, 100, 4)
        assert str(chosen[-1].eval("Name")) == "swamped"


class TestMakePolicy:
    def test_known_names(self):
        assert make_policy("random").name == "random"
        assert make_policy("space").name == "space"
        assert make_policy("throughput").name == "throughput"
        assert make_policy("load").name == "load"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("best-effort")


class TestThroughputRankedSites:
    def test_orders_and_drops_dead(self, collector):
        ranked = throughput_ranked_sites(
            collector, ["small", "large", "medium", "ghost"])
        assert ranked == ["medium", "large", "small"]

    def test_expired_site_omitted(self):
        t = [0.0]
        c = Collector(clock=lambda: t[0], default_ttl=10.0)
        c.advertise(site_ad("dying", 10**6, mbps=9.0))
        c.advertise(site_ad("alive", 10**6, mbps=1.0), ttl=100.0)
        assert throughput_ranked_sites(c, ["dying", "alive"]) == \
               ["dying", "alive"]
        t[0] = 11.0
        assert throughput_ranked_sites(c, ["dying", "alive"]) == ["alive"]
