"""Live tests: the federated client's resolution and failover."""

import pytest

from repro.replica.replicator import ReplicationError

pytestmark = pytest.mark.timeout(120)


class TestResolution:
    def test_read_round_trips(self, fleet3):
        catalog, replicator, client = fleet3.federate(target_count=2)
        payload = b"logical bytes" * 700
        with replicator, client:
            client.write("doc.bin", payload)
            assert client.read("doc.bin") == payload

    def test_resolve_ranks_only_live_sites(self, fleet3):
        catalog, replicator, client = fleet3.federate(target_count=3)
        with replicator, client:
            client.write("r.bin", b"r" * 500)
            ranked = client.resolve("r.bin")
            assert sorted(ranked) == sorted(fleet3.names())
            victim = ranked[-1]
            fleet3.kill(victim)  # ad withdrawn
            assert victim not in client.resolve("r.bin")

    def test_duplicate_write_needs_overwrite(self, fleet3):
        catalog, replicator, client = fleet3.federate(target_count=2)
        with replicator, client:
            client.write("dup.bin", b"one")
            with pytest.raises(ReplicationError):
                client.write("dup.bin", b"two")
            client.write("dup.bin", b"two" * 400, overwrite=True)
            assert client.read("dup.bin") == b"two" * 400

    def test_unknown_logical_raises(self, fleet3):
        catalog, replicator, client = fleet3.federate()
        with replicator, client:
            with pytest.raises(ReplicationError):
                client.read("never-written.bin")


class TestFailover:
    def test_read_fails_over_past_a_dead_site(self, fleet3):
        catalog, replicator, client = fleet3.federate(target_count=3)
        payload = b"survives the outage" * 300
        with replicator, client:
            client.write("fo.bin", payload)
            victim = client.resolve("fo.bin")[0]  # the ranked-first site
            stale_ad = fleet3.server(victim).advertisement()
            fleet3.kill(victim)
            # Re-publish the victim's stale ad: the collector still
            # lists it, so the client *will* dial the dead site first
            # and must fail over instead of erroring.
            fleet3.collector.advertise(stale_ad, ttl=30.0)
            assert client.resolve("fo.bin")[0] == victim
            assert client.read("fo.bin") == payload
            # The dead copy got implicated for the repair loop.
            suspect = {r.site for r in catalog.locations("fo.bin")
                       if r.state == "suspect"}
            assert victim in suspect

    def test_write_skips_a_dead_primary(self, fleet3):
        # Kill a site but leave its stale ad visible: placement may
        # pick it as primary, and store() must fall through to a live
        # appliance rather than surface an error.
        catalog, replicator, client = fleet3.federate(target_count=2)
        victim = fleet3.names()[0]
        stale_ad = fleet3.server(victim).advertisement()
        fleet3.kill(victim)
        fleet3.collector.advertise(stale_ad, ttl=30.0)
        with replicator, client:
            client.write("w.bin", b"w" * 2000)
            valid = catalog.valid_locations("w.bin")
            assert len(valid) == 2
            assert victim not in {r.site for r in valid}
            assert client.read("w.bin") == b"w" * 2000

    def test_all_replicas_dark_is_an_error(self, fleet3):
        catalog, replicator, client = fleet3.federate(target_count=2)
        with replicator, client:
            client.write("dark.bin", b"d" * 100)
            for name in list(catalog.sites("dark.bin")):
                fleet3.kill(name)
            with pytest.raises(ReplicationError):
                client.read("dark.bin")
