"""Unit tests for the JBOS shared store and throttle."""

import time

import pytest

from repro.jbos.store import SimpleStore, SimpleStoreError
from repro.jbos.throttle import Throttle, Unthrottled


class TestSimpleStore:
    def test_write_read(self):
        s = SimpleStore()
        s.write("/f", b"data")
        assert s.read("/f") == b"data"
        assert s.size("/f") == 4

    def test_missing_file(self):
        s = SimpleStore()
        with pytest.raises(SimpleStoreError):
            s.read("/nope")
        with pytest.raises(SimpleStoreError):
            s.delete("/nope")
        with pytest.raises(SimpleStoreError):
            s.size("/nope")

    def test_write_needs_parent_dir(self):
        s = SimpleStore()
        with pytest.raises(SimpleStoreError):
            s.write("/no/such/f", b"x")

    def test_mkdir_listdir(self):
        s = SimpleStore()
        s.mkdir("/d")
        s.mkdir("/d/sub")
        s.write("/d/f", b"123")
        assert s.listdir("/d") == [("f", "file", 3), ("sub", "dir", 0)]

    def test_rmdir_requires_empty(self):
        s = SimpleStore()
        s.mkdir("/d")
        s.write("/d/f", b"x")
        with pytest.raises(SimpleStoreError):
            s.rmdir("/d")
        s.delete("/d/f")
        s.rmdir("/d")
        assert not s.exists("/d")

    def test_root_not_removable(self):
        with pytest.raises(SimpleStoreError):
            SimpleStore().rmdir("/")

    def test_mkdir_conflicts(self):
        s = SimpleStore()
        s.mkdir("/d")
        with pytest.raises(SimpleStoreError):
            s.mkdir("/d")
        s.write("/f", b"x")
        with pytest.raises(SimpleStoreError):
            s.mkdir("/f")

    def test_write_at_extends_with_zeros(self):
        s = SimpleStore()
        s.mkdir("/d")
        size = s.write_at("/d/f", 4, b"ab")
        assert size == 6
        assert s.read("/d/f") == b"\x00\x00\x00\x00ab"

    def test_write_at_overwrites_in_place(self):
        s = SimpleStore()
        s.write("/f", b"abcdef")
        s.write_at("/f", 2, b"XY")
        assert s.read("/f") == b"abXYef"

    def test_path_normalization(self):
        s = SimpleStore()
        s.mkdir("/d")
        s.write("/d//f", b"x")
        assert s.read("/d/f") == b"x"

    def test_listdir_is_shallow(self):
        s = SimpleStore()
        s.mkdir("/d")
        s.mkdir("/d/deep")
        s.write("/d/deep/f", b"x")
        names = [n for n, _, _ in s.listdir("/d")]
        assert names == ["deep"]


class TestThrottle:
    def test_paces_to_rate(self):
        throttle = Throttle(1_000_000, burst=50_000)
        t0 = time.monotonic()
        throttle.consume(500_000)
        elapsed = time.monotonic() - t0
        assert 0.3 < elapsed < 1.5

    def test_burst_is_free(self):
        throttle = Throttle(1_000, burst=10_000)
        t0 = time.monotonic()
        throttle.consume(5_000)
        assert time.monotonic() - t0 < 0.1

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Throttle(0)

    def test_unthrottled_noop(self):
        Unthrottled().consume(10**12)
