"""Unit tests for the live transfer manager."""

import io
import threading
import time

import pytest

from repro.nest.config import NestConfig
from repro.nest.transfer import TransferError, TransferManager


@pytest.fixture
def manager():
    tm = TransferManager(NestConfig(transfer_workers=4))
    yield tm
    tm.shutdown()


class TestBasicTransfers:
    def test_round_trip(self, manager):
        payload = b"payload " * 10_000
        sink = io.BytesIO()
        moved = manager.transfer_sync(io.BytesIO(payload), sink,
                                      len(payload), "chirp")
        assert moved == len(payload)
        assert sink.getvalue() == payload

    def test_empty_transfer(self, manager):
        sink = io.BytesIO()
        assert manager.transfer_sync(io.BytesIO(b""), sink, 0, "http") == 0

    def test_unknown_length_reads_to_eof(self, manager):
        payload = b"x" * 123_456
        sink = io.BytesIO()
        moved = manager.transfer_sync(io.BytesIO(payload), sink, -1, "ftp")
        assert moved == len(payload)

    def test_short_source_reports_error(self, manager):
        sink = io.BytesIO()
        transfer = manager.submit(io.BytesIO(b"only 9 by"), sink, 100, "chirp")
        with pytest.raises(TransferError):
            transfer.wait(5)

    def test_concurrent_transfers_isolated(self, manager):
        transfers = []
        for i in range(16):
            payload = bytes([i]) * 10_000
            sink = io.BytesIO()
            transfers.append(
                (manager.submit(io.BytesIO(payload), sink, len(payload),
                                "http"), sink, payload)
            )
        for transfer, sink, payload in transfers:
            assert transfer.wait(10) == len(payload)
            assert sink.getvalue() == payload

    def test_on_done_callback(self, manager):
        done = threading.Event()
        seen = []

        def callback(transfer):
            seen.append(transfer.moved)
            done.set()

        manager.submit(io.BytesIO(b"abc"), io.BytesIO(), 3, "chirp",
                       on_done=callback)
        assert done.wait(5)
        assert seen == [3]


class TestScheduling:
    def test_stride_shapes_live_transfers(self):
        # Throttle via tiny quanta so shaping is observable.
        config = NestConfig(
            scheduling="stride",
            shares={"fast": 4.0, "slow": 1.0},
            transfer_workers=1,
            quantum_bytes=1024,
        )
        tm = TransferManager(config)
        try:
            moved = {"fast": 0, "slow": 0}
            size = 400_000

            class CountingSink(io.BytesIO):
                def __init__(self, key):
                    super().__init__()
                    self.key = key

                def write(self, data):
                    moved[self.key] += len(data)
                    return super().write(data)

            transfers = []
            for key in ("fast", "fast", "slow", "slow"):
                transfers.append(tm.submit(
                    io.BytesIO(b"d" * size), CountingSink(key), size, key))
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                total = moved["fast"] + moved["slow"]
                if total > 500_000:
                    break
                time.sleep(0.01)
            # While both classes are backlogged, fast gets ~4x.
            assert moved["fast"] > 2 * moved["slow"]
            for t in transfers:
                t.wait(30)
        finally:
            tm.shutdown()

    def test_selector_reports_fed(self, manager):
        for _ in range(6):
            manager.transfer_sync(io.BytesIO(b"z" * 1000), io.BytesIO(),
                                  1000, "chirp")
        stats = manager.selector.stats
        assert sum(s.completions for s in stats.values()) == 6

    def test_shutdown_idempotent_enough(self):
        tm = TransferManager(NestConfig())
        tm.shutdown()
        # A second shutdown must not raise.
        tm._running = False
