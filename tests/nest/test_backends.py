"""Unit tests for the physical-storage backends."""

import pytest

from repro.nest.backends import LocalFSStore, MemoryStore


@pytest.fixture(params=["memory", "localfs"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    return LocalFSStore(str(tmp_path / "root"))


class TestBackendContract:
    def test_write_then_read(self, store):
        with store.open_write("/f") as w:
            w.write(b"hello bytes")
        with store.open_read("/f") as r:
            assert r.read() == b"hello bytes"

    def test_overwrite_truncates(self, store):
        with store.open_write("/f") as w:
            w.write(b"long original content")
        with store.open_write("/f") as w:
            w.write(b"short")
        assert store.size("/f") == 5

    def test_append_mode(self, store):
        with store.open_write("/f") as w:
            w.write(b"one")
        with store.open_write("/f", append=True) as w:
            w.write(b"two")
        with store.open_read("/f") as r:
            assert r.read() == b"onetwo"

    def test_update_seek_write(self, store):
        with store.open_write("/f") as w:
            w.write(b"abcdef")
        with store.open_update("/f") as u:
            u.seek(2)
            u.write(b"XY")
        with store.open_read("/f") as r:
            assert r.read() == b"abXYef"

    def test_update_creates_missing(self, store):
        with store.open_update("/new") as u:
            u.write(b"fresh")
        assert store.size("/new") == 5

    def test_delete_and_size(self, store):
        with store.open_write("/f") as w:
            w.write(b"xyz")
        assert store.size("/f") == 3
        store.delete("/f")
        assert store.size("/f") == 0
        store.delete("/f")  # idempotent

    def test_nested_paths(self, store):
        with store.open_write("/a/b/c/deep") as w:
            w.write(b"d")
        with store.open_read("/a/b/c/deep") as r:
            assert r.read() == b"d"


class TestLocalFSSandbox:
    def test_escape_rejected(self, tmp_path):
        store = LocalFSStore(str(tmp_path / "root"))
        with pytest.raises(PermissionError):
            store.open_read("/../outside")

    def test_absolute_paths_confined(self, tmp_path):
        store = LocalFSStore(str(tmp_path / "root"))
        with store.open_write("/etc/passwd") as w:  # relative to root
            w.write(b"safe")
        assert (tmp_path / "root" / "etc" / "passwd").exists()
