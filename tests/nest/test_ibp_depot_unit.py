"""Unit tests for the IBP depot translation layer (no sockets)."""

import pytest

from repro.nest.ibp import IbpDepot
from repro.nest.storage import StorageManager
from repro.protocols.ibp import (
    MANAGE,
    READ,
    STABLE,
    VOLATILE,
    WRITE,
    IbpError,
    parse_capability,
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def depot(clock):
    storage = StorageManager(capacity_bytes=100_000, clock=clock,
                             require_lots=True, lot_enforcement="nest")
    return IbpDepot(storage, host="depot.test")


def caps_of(depot, alloc):
    return {kind: parse_capability(depot.capability(alloc, kind))
            for kind in (READ, WRITE, MANAGE)}


class TestAllocation:
    def test_allocate_creates_lot_and_file(self, depot):
        alloc = depot.allocate(1000, 60, STABLE)
        assert alloc.lot_id in depot.storage.lots.lots
        assert depot.storage.exists(alloc.path)

    def test_capability_embeds_host(self, depot):
        alloc = depot.allocate(100, 60, STABLE)
        cap = parse_capability(depot.capability(alloc, READ))
        assert cap.host == "depot.test"
        assert cap.alloc_id == alloc.alloc_id

    def test_secrets_distinct_per_kind(self, depot):
        alloc = depot.allocate(100, 60, STABLE)
        secrets = {alloc.secrets[k] for k in (READ, WRITE, MANAGE)}
        assert len(secrets) == 3

    def test_store_appends(self, depot):
        alloc = depot.allocate(100, 60, STABLE)
        caps = caps_of(depot, alloc)
        assert depot.store(caps[WRITE], b"aa") == 2
        assert depot.store(caps[WRITE], b"bb") == 4
        assert depot.load(caps[READ], 0, 10) == b"aabb"

    def test_load_ranges(self, depot):
        alloc = depot.allocate(100, 60, STABLE)
        caps = caps_of(depot, alloc)
        depot.store(caps[WRITE], b"0123456789")
        assert depot.load(caps[READ], 3, 4) == b"3456"
        assert depot.load(caps[READ], 10, 4) == b""
        with pytest.raises(IbpError):
            depot.load(caps[READ], 11, 1)

    def test_stable_expiry_follows_lot(self, depot, clock):
        alloc = depot.allocate(100, 60, STABLE)
        caps = caps_of(depot, alloc)
        assert depot.probe(caps[MANAGE])["expires_at"] == 60.0
        depot.extend(caps[MANAGE], 600)
        assert depot.probe(caps[MANAGE])["expires_at"] == 600.0

    def test_volatile_lot_flag(self, depot):
        alloc = depot.allocate(100, 60, VOLATILE)
        lot = depot.storage.lots.lots[alloc.lot_id]
        assert lot.volatile

    def test_failed_store_rolls_back_used(self, depot):
        alloc = depot.allocate(100, 60, STABLE)
        caps = caps_of(depot, alloc)
        with pytest.raises(IbpError):
            depot.store(caps[WRITE], b"x" * 200)
        assert depot.probe(caps[MANAGE])["used"] == 0

    def test_allocate_beyond_capacity(self, depot):
        with pytest.raises(IbpError) as info:
            depot.allocate(10**9, 60, STABLE)
        assert info.value.code == "no-space"

    def test_decrement_releases_lot_space(self, depot):
        alloc = depot.allocate(50_000, 60, STABLE)
        caps = caps_of(depot, alloc)
        depot.store(caps[WRITE], b"z" * 10_000)
        before = depot.storage.lots.available_for_new_lot()
        depot.decrement(caps[MANAGE])
        after = depot.storage.lots.available_for_new_lot()
        assert after > before
        assert not depot.storage.exists(alloc.path)
