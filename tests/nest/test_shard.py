"""Shard layer: worker processes behind one SO_REUSEPORT port.

Spawning real processes is slow, so the live tests share one
module-scoped two-worker group and keep the assertions per-concern:
readiness, the pipe control plane, the shared Chirp port, and the
direct per-worker HTTP ports.
"""

from __future__ import annotations

import pytest

from repro.classads import parse
from repro.client.chirp import ChirpClient
from repro.client.http import HttpClient
from repro.nest.config import NestConfig
from repro.nest.shard import ShardGroup, shard_for, shard_root


class TestShardFor:
    def test_stable_and_bounded(self):
        # Same top-level name -> same shard, regardless of depth.
        assert shard_for("/a/b", 4) == shard_for("/a/c/d", 4)
        assert shard_for("a", 4) == shard_for("/a/", 4)
        for shards in (1, 2, 5):
            for path in ("/x", "/y/z", "deep/er/path"):
                assert 0 <= shard_for(path, shards) < shards
        assert shard_for("/anything", 0) == 0

    def test_spreads_across_shards(self):
        hits = {shard_for(f"/vol-{i}", 4) for i in range(64)}
        assert hits == {0, 1, 2, 3}


@pytest.fixture(scope="module")
def group():
    with ShardGroup(2, config=NestConfig(name="shard-test")) as grp:
        yield grp


class TestShardGroupLive:
    def test_workers_ready_with_distinct_processes(self, group):
        assert len(group.workers) == 2
        pids = {worker.pid for worker in group.workers}
        assert len(pids) == 2  # real processes, not threads
        for worker in group.workers:
            assert worker.process.is_alive()
            assert worker.shard_root == shard_root(worker.index)

    def test_health_control_plane(self, group):
        reports = group.health()
        assert len(reports) == 2
        for report in sorted(reports, key=lambda r: r["index"]):
            assert report["alive"]
            assert report["pid"] == group.workers[report["index"]].pid
            assert report["connections_total"] >= 0
            assert "chirp" in report["ports"]

    def test_shared_port_serves_a_shard_worker(self, group):
        with ChirpClient(*group.endpoint()) as client:
            ad = parse(client.query())
            # The kernel picked a worker; either way it is one of ours.
            assert ad.eval("Name") in {"shard-test-shard0",
                                       "shard-test-shard1"}

    def test_direct_http_ports_address_specific_workers(self, group):
        for worker in group.workers:
            root = shard_root(worker.index)
            payload = bytes([worker.index]) * 2048
            with HttpClient(*group.direct_http_endpoint(worker.index)) as c:
                c.put(f"{root}/probe.bin", payload)
                assert c.get(f"{root}/probe.bin") == payload

    def test_start_twice_rejected(self, group):
        with pytest.raises(RuntimeError, match="already started"):
            group.start()


def test_stop_is_clean_and_final():
    grp = ShardGroup(1, config=NestConfig(name="shard-stop"))
    grp.start()
    process = grp.workers[0].process
    grp.stop()
    assert grp.workers == []
    assert not process.is_alive()
