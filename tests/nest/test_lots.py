"""Unit tests for lot management (paper, section 5)."""

import pytest

from repro.nest.lots import LotError, LotManager, LotState


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return Clock()


def manager(clock, capacity=1000, enforcement="nest", policy="expired-first",
            reclaimed=None):
    return LotManager(
        capacity, clock=clock, enforcement=enforcement, reclaim_policy=policy,
        on_reclaim=(reclaimed.append if reclaimed is not None else None),
    )


class TestLifecycle:
    def test_create_and_stat(self, clock):
        mgr = manager(clock)
        lot = mgr.create_lot("alice", 400, duration=60)
        info = mgr.stat(lot.lot_id)
        assert info["owner"] == "alice"
        assert info["capacity"] == 400
        assert info["state"] == "active"
        assert info["expires_at"] == 60.0

    def test_bad_parameters_rejected(self, clock):
        mgr = manager(clock)
        with pytest.raises(LotError):
            mgr.create_lot("a", 0, duration=10)
        with pytest.raises(LotError):
            mgr.create_lot("a", 10, duration=0)

    def test_capacity_guarantee_respected(self, clock):
        mgr = manager(clock, capacity=1000)
        mgr.create_lot("a", 600, duration=60)
        with pytest.raises(LotError):
            mgr.create_lot("b", 600, duration=60)
        mgr.create_lot("b", 400, duration=60)  # exactly fits

    def test_expiry_flips_to_best_effort(self, clock):
        mgr = manager(clock)
        lot = mgr.create_lot("a", 100, duration=50)
        clock.now = 49.9
        assert mgr.stat(lot.lot_id)["state"] == "active"
        clock.now = 50.0
        assert mgr.stat(lot.lot_id)["state"] == "best_effort"

    def test_files_survive_expiry(self, clock):
        mgr = manager(clock)
        lot = mgr.create_lot("a", 100, duration=50)
        mgr.charge("a", "/f", 80)
        clock.now = 100.0
        assert mgr.stat(lot.lot_id)["files"] == ["/f"]

    def test_renew_extends(self, clock):
        mgr = manager(clock)
        lot = mgr.create_lot("a", 100, duration=50)
        clock.now = 40.0
        mgr.renew(lot.lot_id, 100)
        assert mgr.stat(lot.lot_id)["expires_at"] == 140.0

    def test_renew_reactivates_best_effort(self, clock):
        mgr = manager(clock)
        lot = mgr.create_lot("a", 100, duration=50)
        clock.now = 60.0
        assert mgr.stat(lot.lot_id)["state"] == "best_effort"
        mgr.renew(lot.lot_id, 50)
        assert mgr.stat(lot.lot_id)["state"] == "active"

    def test_renew_fails_if_space_promised_away(self, clock):
        mgr = manager(clock, capacity=1000)
        lot = mgr.create_lot("a", 800, duration=50)
        clock.now = 60.0  # lot a expires
        mgr.create_lot("b", 900, duration=50)
        with pytest.raises(LotError):
            mgr.renew(lot.lot_id, 50)

    def test_renew_wrong_owner_rejected(self, clock):
        mgr = manager(clock)
        lot = mgr.create_lot("a", 100, duration=50)
        with pytest.raises(LotError):
            mgr.renew(lot.lot_id, 50, owner="b")

    def test_delete_reports_orphans(self, clock):
        mgr = manager(clock)
        lot = mgr.create_lot("a", 100, duration=50)
        mgr.charge("a", "/f", 10)
        orphans = mgr.delete_lot(lot.lot_id, owner="a")
        assert orphans == ["/f"]
        assert mgr.lots == {}

    def test_unknown_lot(self, clock):
        mgr = manager(clock)
        with pytest.raises(LotError):
            mgr.stat("lot999")

    def test_list_lots_filters_by_owner(self, clock):
        mgr = manager(clock)
        mgr.create_lot("a", 100, duration=50)
        mgr.create_lot("b", 100, duration=50)
        assert len(mgr.list_lots()) == 2
        assert len(mgr.list_lots(owner="a")) == 1


class TestCharging:
    def test_charge_requires_active_lot(self, clock):
        mgr = manager(clock)
        with pytest.raises(LotError):
            mgr.charge("nobody", "/f", 10)

    def test_nest_mode_spans_lots(self, clock):
        mgr = manager(clock, enforcement="nest")
        l1 = mgr.create_lot("a", 100, duration=50)
        l2 = mgr.create_lot("a", 100, duration=50)
        mgr.charge("a", "/big", 150)
        assert mgr.lots[l1.lot_id].used == 100
        assert mgr.lots[l2.lot_id].used == 50

    def test_nest_mode_rejects_overfill(self, clock):
        mgr = manager(clock, enforcement="nest")
        mgr.create_lot("a", 100, duration=50)
        with pytest.raises(LotError):
            mgr.charge("a", "/big", 150)

    def test_quota_mode_allows_single_lot_overfill(self, clock):
        # The paper's caveat: quota enforcement is per-user only.
        mgr = manager(clock, enforcement="quota")
        l1 = mgr.create_lot("a", 100, duration=50)
        mgr.create_lot("a", 100, duration=50)
        mgr.charge("a", "/big", 150)
        assert mgr.lots[l1.lot_id].used == 150  # overfilled

    def test_quota_mode_enforces_user_total(self, clock):
        mgr = manager(clock, enforcement="quota")
        mgr.create_lot("a", 100, duration=50)
        mgr.create_lot("a", 100, duration=50)
        with pytest.raises(LotError):
            mgr.charge("a", "/big", 250)

    def test_release_partial(self, clock):
        mgr = manager(clock)
        lot = mgr.create_lot("a", 100, duration=50)
        mgr.charge("a", "/f", 60)
        mgr.release("/f", 20)
        assert mgr.lots[lot.lot_id].used == 40

    def test_release_all(self, clock):
        mgr = manager(clock)
        lot = mgr.create_lot("a", 100, duration=50)
        mgr.charge("a", "/f", 60)
        mgr.release("/f")
        assert mgr.lots[lot.lot_id].used == 0

    def test_user_limit_counts_active_only(self, clock):
        mgr = manager(clock)
        mgr.create_lot("a", 100, duration=50)
        mgr.create_lot("a", 200, duration=500)
        assert mgr.user_limit("a") == 300
        clock.now = 60.0
        assert mgr.user_limit("a") == 200


class TestReclamation:
    def test_best_effort_space_reclaimed_for_new_lot(self, clock):
        reclaimed = []
        mgr = manager(clock, capacity=1000, reclaimed=reclaimed)
        mgr.create_lot("a", 800, duration=50)
        mgr.charge("a", "/old", 700)
        clock.now = 100.0  # a expires; 700 bytes best-effort
        lot = mgr.create_lot("b", 900, duration=50)
        assert lot.capacity == 900
        assert "/old" in reclaimed

    def test_reclaim_only_what_is_needed(self, clock):
        reclaimed = []
        mgr = manager(clock, capacity=1000, reclaimed=reclaimed)
        lot_a = mgr.create_lot("a", 500, duration=50)
        mgr.charge("a", "/f1", 200)
        mgr.charge("a", "/f2", 200)
        clock.now = 100.0
        mgr.create_lot("b", 700, duration=50)
        # needed = 700 - (1000 - 400) = 100 -> one file suffices.
        assert len(reclaimed) == 1

    def test_cannot_reclaim_active_lots(self, clock):
        mgr = manager(clock, capacity=1000)
        mgr.create_lot("a", 800, duration=500)
        mgr.charge("a", "/f", 700)
        with pytest.raises(LotError):
            mgr.create_lot("b", 900, duration=50)

    def test_expired_first_policy(self, clock):
        reclaimed = []
        mgr = manager(clock, capacity=1000, reclaimed=reclaimed)
        first = mgr.create_lot("a", 300, duration=10)
        mgr.charge("a", "/oldest", 300)
        clock.now = 5.0
        second = mgr.create_lot("b", 300, duration=10)
        mgr.charge("b", "/newer", 300)
        clock.now = 100.0  # both best-effort; a expired earlier
        mgr.create_lot("c", 700, duration=50)
        assert reclaimed[0] == "/oldest"

    def test_largest_first_policy(self, clock):
        reclaimed = []
        mgr = manager(clock, capacity=1000, policy="largest-first",
                      reclaimed=reclaimed)
        mgr.create_lot("a", 200, duration=10)
        mgr.charge("a", "/small", 100)
        mgr.create_lot("b", 400, duration=10)
        mgr.charge("b", "/large", 400)
        clock.now = 100.0
        mgr.create_lot("c", 800, duration=50)
        assert reclaimed[0] == "/large"

    def test_lru_policy(self, clock):
        reclaimed = []
        mgr = manager(clock, capacity=1000, policy="lru", reclaimed=reclaimed)
        cold = mgr.create_lot("a", 300, duration=10)
        mgr.charge("a", "/cold", 300)
        clock.now = 5.0
        warm = mgr.create_lot("b", 300, duration=10)
        mgr.charge("b", "/warm", 300)
        clock.now = 100.0
        mgr.create_lot("c", 650, duration=50)
        assert reclaimed[0] == "/cold"

    def test_empty_best_effort_lot_removed_after_drain(self, clock):
        mgr = manager(clock, capacity=1000)
        lot = mgr.create_lot("a", 900, duration=10)
        mgr.charge("a", "/f", 900)
        clock.now = 50.0
        mgr.create_lot("b", 1000, duration=50)
        assert lot.lot_id not in mgr.lots

    def test_invalid_configuration_rejected(self, clock):
        with pytest.raises(ValueError):
            LotManager(100, clock=clock, enforcement="magic")
        with pytest.raises(ValueError):
            LotManager(100, clock=clock, reclaim_policy="random")
