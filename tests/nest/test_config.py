"""Unit tests for NestConfig validation."""

import pytest

from repro.nest.config import NestConfig


class TestValidation:
    def test_defaults_valid(self):
        NestConfig().validate()

    def test_bad_scheduling(self):
        with pytest.raises(ValueError):
            NestConfig(scheduling="lottery").validate()

    def test_bad_enforcement(self):
        with pytest.raises(ValueError):
            NestConfig(lot_enforcement="none").validate()

    def test_bad_protocol(self):
        with pytest.raises(ValueError):
            NestConfig(protocols=("chirp", "gopher")).validate()

    def test_bad_workers(self):
        with pytest.raises(ValueError):
            NestConfig(transfer_workers=0).validate()

    def test_bad_quantum(self):
        with pytest.raises(ValueError):
            NestConfig(quantum_bytes=0).validate()

    def test_paper_defaults(self):
        cfg = NestConfig()
        assert set(cfg.protocols) == {"chirp", "ftp", "gridftp", "http", "nfs"}
        assert cfg.scheduling == "fcfs"
        assert cfg.concurrency == "adaptive"
        assert cfg.lot_enforcement == "quota"
