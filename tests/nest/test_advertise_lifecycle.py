"""The server's advertisement lifecycle: publish, heartbeat, withdraw."""

import time

from repro.grid.discovery import Collector
from repro.nest.config import NestConfig
from repro.nest.server import NestServer


def _config(name="ad-life"):
    return NestConfig(name=name, protocols=("chirp",), management=False)


class TestAdvertiseTo:
    def test_publish_on_running_server(self):
        collector = Collector()
        with NestServer(_config()) as server:
            server.advertise_to(collector, readvertise_interval=0.0)
            assert collector.names() == {"ad-life"}

    def test_publish_deferred_until_start(self):
        # Registering before start() must wait for the ports to exist.
        collector = Collector()
        server = NestServer(_config())
        server.advertise_to(collector, readvertise_interval=0.0)
        assert collector.names() == set()
        server.start()
        try:
            assert collector.names() == {"ad-life"}
            ad = collector.lookup("ad-life")
            assert ad.eval("ChirpPort") == server.ports["chirp"]
        finally:
            server.stop()

    def test_stop_withdraws(self):
        collector = Collector()
        server = NestServer(_config()).start()
        server.advertise_to(collector, readvertise_interval=0.0)
        assert "ad-life" in collector.names()
        server.stop()
        # A stopping appliance disappears immediately -- not at TTL
        # expiry -- so no scheduler matches a dying server.
        assert collector.names() == set()

    def test_heartbeat_outlives_ttl(self):
        # TTL far shorter than the test: only the heartbeat's periodic
        # refresh keeps the ad alive.
        collector = Collector()
        server = NestServer(_config()).start()
        try:
            server.advertise_to(collector, ttl=0.3,
                                readvertise_interval=0.05)
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                assert collector.names() == {"ad-life"}
                time.sleep(0.05)
        finally:
            server.stop()
        assert collector.names() == set()

    def test_no_heartbeat_lets_ttl_lapse(self):
        collector = Collector()
        server = NestServer(_config()).start()
        try:
            server.advertise_to(collector, ttl=0.1,
                                readvertise_interval=0.0)
            assert server._advert_thread is None
            time.sleep(0.25)
            assert collector.names() == set()
        finally:
            server.stop()

    def test_interval_defaults_to_config(self):
        config = _config()
        config.advertise_interval = 123.0
        collector = Collector()
        with NestServer(config) as server:
            server.advertise_to(collector)
            assert server._advert_interval == 123.0

    def test_running_property(self):
        server = NestServer(_config())
        assert not server.running
        server.start()
        assert server.running
        server.stop()
        assert not server.running
