"""Unit tests for live-server plumbing (no sockets needed)."""

import pytest

from repro.nest.config import NestConfig
from repro.nest.server import FileHandleRegistry, NestServer


class TestFileHandleRegistry:
    def test_root_is_token_one(self):
        reg = FileHandleRegistry()
        assert reg.path_of(1) == "/"

    def test_token_stable(self):
        reg = FileHandleRegistry()
        t1 = reg.token_for("/a/b")
        t2 = reg.token_for("/a/b")
        assert t1 == t2
        assert reg.path_of(t1) == "/a/b"

    def test_distinct_paths_distinct_tokens(self):
        reg = FileHandleRegistry()
        assert reg.token_for("/a") != reg.token_for("/b")

    def test_forget_makes_stale(self):
        reg = FileHandleRegistry()
        token = reg.token_for("/gone")
        reg.forget("/gone")
        assert reg.path_of(token) is None
        # A fresh token is handed out afterwards.
        assert reg.token_for("/gone") != token

    def test_unknown_token_is_none(self):
        assert FileHandleRegistry().path_of(424242) is None


class TestServerConstruction:
    def test_subject_map(self):
        server = NestServer(subject_map={"/CN=alice": "alice"})
        try:
            assert server.map_subject("/CN=alice") == "alice"
            assert server.map_subject("/CN=unknown") == "/CN=unknown"
        finally:
            server.transfers.shutdown()

    def test_double_start_rejected(self):
        server = NestServer(NestConfig(protocols=("chirp",)))
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_requested_ports_honored(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        server = NestServer(NestConfig(protocols=("chirp",)),
                            ports={"chirp": port})
        server.start()
        try:
            assert server.ports["chirp"] == port
        finally:
            server.stop()

    def test_no_ibp_depot_without_protocol(self):
        server = NestServer(NestConfig(protocols=("chirp",)))
        try:
            assert server.ibp_depot is None
        finally:
            server.transfers.shutdown()

    def test_advertisement_lists_ports(self):
        server = NestServer(NestConfig(protocols=("chirp", "http")))
        server.start()
        try:
            ad = server.advertisement()
            assert ad.eval("ChirpPort") == server.ports["chirp"]
            assert ad.eval("HttpPort") == server.ports["http"]
        finally:
            server.stop()


class TestCli:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.name == "nest"
        assert "chirp" in args.protocols

    def test_bench_choices(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "fig3"])
        assert args.figure == "fig3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])

    def test_command_required(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([])
