"""Unit tests for lot attachments (charge routing by path prefix)."""

import pytest

from repro.nest.lots import LotError, LotManager


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def mgr():
    return LotManager(10_000, clock=Clock(), enforcement="nest")


class TestAttachments:
    def test_attached_lot_charged_first(self, mgr):
        first = mgr.create_lot("u", 1000, duration=60)
        second = mgr.create_lot("u", 1000, duration=60)
        mgr.attach(second.lot_id, "/project")
        mgr.charge("u", "/project/data", 500)
        assert second.used == 500
        assert first.used == 0

    def test_unattached_paths_use_default_order(self, mgr):
        first = mgr.create_lot("u", 1000, duration=60)
        second = mgr.create_lot("u", 1000, duration=60)
        mgr.attach(second.lot_id, "/project")
        mgr.charge("u", "/elsewhere/data", 500)
        assert first.used == 500

    def test_longest_prefix_wins(self, mgr):
        outer = mgr.create_lot("u", 1000, duration=60)
        inner = mgr.create_lot("u", 1000, duration=60)
        mgr.attach(outer.lot_id, "/p")
        mgr.attach(inner.lot_id, "/p/deep")
        mgr.charge("u", "/p/deep/f", 100)
        mgr.charge("u", "/p/shallow", 100)
        assert inner.used == 100
        assert outer.used == 100

    def test_spillover_beyond_attached_lot(self, mgr):
        small = mgr.create_lot("u", 100, duration=60)
        big = mgr.create_lot("u", 1000, duration=60)
        mgr.attach(small.lot_id, "/p")
        mgr.charge("u", "/p/f", 400)
        assert small.used == 100  # filled first
        assert big.used == 300  # spanned into

    def test_attach_unknown_lot(self, mgr):
        with pytest.raises(LotError):
            mgr.attach("lot999", "/p")

    def test_attach_owner_checked(self, mgr):
        lot = mgr.create_lot("u", 100, duration=60)
        with pytest.raises(LotError):
            mgr.attach(lot.lot_id, "/p", owner="other")

    def test_prefix_does_not_match_siblings(self, mgr):
        lot = mgr.create_lot("u", 1000, duration=60)
        other = mgr.create_lot("u", 1000, duration=60)
        mgr.attach(other.lot_id, "/pro")
        mgr.charge("u", "/project/f", 10)  # "/pro" is not a path prefix
        assert other.used == 0
        assert lot.used == 10
