"""Unit tests for adaptive concurrency-model selection."""

import pytest

from repro.nest.concurrency import (
    ALL_MODELS,
    AdaptiveSelector,
    FixedSelector,
    make_selector,
)


class TestFixed:
    def test_always_same(self):
        sel = FixedSelector("events")
        assert [sel.choose() for _ in range(5)] == ["events"] * 5

    def test_report_is_noop(self):
        FixedSelector("threads").report("threads", 10, 1.0)


class TestWarmup:
    def test_equal_distribution_during_warmup(self):
        sel = AdaptiveSelector(models=("threads", "events"), warmup=5)
        picks = [sel.choose() for _ in range(10)]
        assert picks.count("threads") == 5
        assert picks.count("events") == 5

    def test_warmup_ends_per_model_on_completions(self):
        sel = AdaptiveSelector(models=("threads", "events"), warmup=2)
        for _ in range(2):
            sel.report("threads", 100, 1.0)
        # events still unwarm: the next choices go there.
        assert sel.choose() == "events"


class TestBiasing:
    def warm(self, sel, goodputs):
        for model, goodput in goodputs.items():
            for _ in range(sel.warmup):
                sel.report(model, int(goodput), 1.0)

    def test_biases_toward_best(self):
        sel = AdaptiveSelector(models=("threads", "events"), warmup=2)
        self.warm(sel, {"threads": 100, "events": 900})
        picks = [sel.choose() for _ in range(100)]
        assert picks.count("events") > 80

    def test_still_samples_worse_model(self):
        sel = AdaptiveSelector(models=("threads", "events"), warmup=2)
        self.warm(sel, {"threads": 100, "events": 900})
        picks = [sel.choose() for _ in range(100)]
        assert picks.count("threads") >= 5  # the cost of adaptation

    def test_proportional_biasing(self):
        sel = AdaptiveSelector(models=("threads", "events"), warmup=2)
        self.warm(sel, {"threads": 300, "events": 900})
        picks = [sel.choose() for _ in range(400)]
        fraction = picks.count("events") / len(picks)
        assert fraction == pytest.approx(0.75, abs=0.05)

    def test_readapts_when_workload_shifts(self):
        sel = AdaptiveSelector(models=("threads", "events"), warmup=2,
                               ewma_alpha=0.5)
        self.warm(sel, {"threads": 100, "events": 900})
        assert sel.best_model() == "events"
        # The workload turns disk-bound: events throughput collapses.
        for _ in range(20):
            sel.report("events", 10, 1.0)
            sel.report("threads", 500, 1.0)
        assert sel.best_model() == "threads"

    def test_deterministic(self):
        def sequence():
            sel = AdaptiveSelector(models=("threads", "events"), warmup=2)
            out = []
            for i in range(50):
                m = sel.choose()
                out.append(m)
                sel.report(m, 100 if m == "threads" else 300, 1.0)
            return out

        assert sequence() == sequence()


class TestValidation:
    def test_empty_models_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveSelector(models=())

    def test_report_unknown_model_rejected(self):
        sel = AdaptiveSelector(models=("threads",))
        with pytest.raises(ValueError):
            sel.report("fibers", 1, 1.0)

    def test_factory(self):
        assert isinstance(make_selector("adaptive"), AdaptiveSelector)
        for model in ALL_MODELS:
            fixed = make_selector(model)
            assert isinstance(fixed, FixedSelector)
            assert fixed.choose() == model
        with pytest.raises(ValueError):
            make_selector("magic")

    def test_distribution_tracks_issues(self):
        sel = AdaptiveSelector(models=("threads", "events"), warmup=1)
        sel.choose()
        sel.choose()
        assert sum(sel.distribution().values()) == 2
