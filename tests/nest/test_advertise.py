"""Unit tests for ClassAd advertisement and discovery matching."""

from repro.classads import MatchMaker, symmetric_match
from repro.nest.advertise import build_advertisement, storage_request_ad
from repro.nest.storage import StorageManager


def make_storage(capacity=10_000):
    return StorageManager(capacity_bytes=capacity, clock=lambda: 0.0)


class TestAdvertisement:
    def test_basic_attributes(self):
        sm = make_storage()
        ad = build_advertisement("n1", sm, ["chirp", "nfs"], host="h",
                                 ports={"chirp": 9094})
        assert ad.eval("Type") == "Storage"
        assert ad.eval("Name") == "n1"
        assert ad.eval("TotalSpace") == 10_000
        assert ad.eval("ChirpPort") == 9094

    def test_grantable_accounts_for_lots(self):
        sm = make_storage()
        sm.lots.create_lot("a", 4_000, duration=100)
        ad = build_advertisement("n1", sm, ["chirp"])
        assert ad.eval("GrantableSpace") == 6_000
        assert ad.eval("ActiveLots") == 1

    def test_file_count(self):
        sm = make_storage()
        sm.mkdir("a", "/d")
        t = sm.approve_put("a", "/d/f", 10)
        t.settle(10)
        ad = build_advertisement("n1", sm, ["chirp"])
        assert ad.eval("FilesStored") == 1


class TestMatching:
    def test_fitting_request_matches(self):
        sm = make_storage()
        ad = build_advertisement("n1", sm, ["chirp", "gridftp"])
        req = storage_request_ad(5_000, protocol="gridftp")
        assert symmetric_match(ad, req)

    def test_oversized_request_rejected(self):
        sm = make_storage()
        ad = build_advertisement("n1", sm, ["chirp"])
        req = storage_request_ad(50_000)
        assert not symmetric_match(ad, req)

    def test_protocol_requirement(self):
        sm = make_storage()
        ad = build_advertisement("n1", sm, ["chirp"])
        assert not symmetric_match(ad, storage_request_ad(1, protocol="nfs"))
        assert symmetric_match(ad, storage_request_ad(1, protocol="chirp"))

    def test_rank_prefers_more_grantable_space(self):
        big = build_advertisement("big", make_storage(100_000), ["chirp"])
        small = build_advertisement("small", make_storage(1_000), ["chirp"])
        mm = MatchMaker([small, big])
        best = mm.best_match(storage_request_ad(500))
        assert best is big
