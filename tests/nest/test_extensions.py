"""Unit tests for the paper's future-work extensions.

Group lots (§5: "group lots will be included in the next release"),
per-user proportional shares (§4.2), and volatile lots backing IBP's
allocation model (§3/§8).
"""

import pytest

from repro.nest.lots import LotError, LotManager, LotState
from repro.nest.scheduling import StrideScheduler, make_job


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return Clock()


class TestGroupLots:
    def make(self, clock, **kwargs):
        return LotManager(10_000, clock=clock,
                          groups={"wind": {"alice", "bob"}},
                          enforcement="nest", **kwargs)

    def test_member_can_charge_group_lot(self, clock):
        mgr = self.make(clock)
        mgr.create_lot("group:wind", 1000, duration=60)
        mgr.charge("alice", "/f", 500)
        mgr.charge("bob", "/g", 400)
        assert mgr.total_used() == 900

    def test_non_member_cannot_charge(self, clock):
        mgr = self.make(clock)
        mgr.create_lot("group:wind", 1000, duration=60)
        with pytest.raises(LotError):
            mgr.charge("mallory", "/f", 10)

    def test_own_lot_preferred_over_group_lot(self, clock):
        mgr = self.make(clock)
        group = mgr.create_lot("group:wind", 1000, duration=60)
        personal = mgr.create_lot("alice", 1000, duration=60)
        mgr.charge("alice", "/f", 600)
        assert personal.used == 600
        assert group.used == 0

    def test_member_can_renew_group_lot(self, clock):
        mgr = self.make(clock)
        lot = mgr.create_lot("group:wind", 1000, duration=60)
        mgr.renew(lot.lot_id, 120, owner="bob")
        with pytest.raises(LotError):
            mgr.renew(lot.lot_id, 120, owner="mallory")

    def test_user_limit_includes_group_lots(self, clock):
        mgr = self.make(clock)
        mgr.create_lot("group:wind", 1000, duration=60)
        mgr.create_lot("alice", 500, duration=60)
        assert mgr.user_limit("alice") == 1500
        assert mgr.user_limit("mallory") == 0


class TestPerUserShares:
    def test_share_by_user(self):
        sched = StrideScheduler(shares={"vip": 3, "guest": 1},
                                share_by="user")
        vip = make_job("http", user="vip")
        guest = make_job("http", user="guest")
        sched.add(vip)
        sched.add(guest)
        moved = {"vip": 0, "guest": 0}
        for _ in range(2000):
            job = sched.select()
            sched.charge(job, 100)
            moved[job.user] += 100
        ratio = moved["vip"] / moved["guest"]
        assert ratio == pytest.approx(3.0, abs=0.2)

    def test_protocol_ignored_when_sharing_by_user(self):
        sched = StrideScheduler(shares={"alice": 1, "bob": 1},
                                share_by="user")
        a = make_job("nfs", user="alice")
        b = make_job("http", user="bob")
        sched.add(a)
        sched.add(b)
        moved = {"alice": 0, "bob": 0}
        for _ in range(1000):
            job = sched.select()
            sched.charge(job, 100)
            moved[job.user] += 100
        assert moved["alice"] == pytest.approx(moved["bob"], rel=0.05)

    def test_invalid_share_key_rejected(self):
        with pytest.raises(ValueError):
            StrideScheduler(share_by="horoscope")


class TestVolatileLots:
    def test_volatile_lot_guarantees_nothing(self, clock):
        mgr = LotManager(1000, clock=clock, enforcement="nest")
        mgr.create_lot("v", 900, duration=60, volatile=True)
        # A stable lot for the full capacity still fits.
        mgr.create_lot("s", 1000, duration=60)

    def test_volatile_data_reclaimed_for_guarantee(self, clock):
        reclaimed = []
        mgr = LotManager(1000, clock=clock, enforcement="nest",
                         on_reclaim=reclaimed.append)
        mgr.create_lot("v", 800, duration=60, volatile=True)
        mgr.charge("v", "/vdata", 700)
        mgr.create_lot("s", 600, duration=60)
        assert "/vdata" in reclaimed

    def test_volatile_lot_accepts_charges_while_active(self, clock):
        mgr = LotManager(1000, clock=clock, enforcement="nest")
        lot = mgr.create_lot("v", 500, duration=60, volatile=True)
        mgr.charge("v", "/f", 300)
        assert lot.used == 300
        assert lot.state is LotState.ACTIVE

    def test_volatile_expiry_still_applies(self, clock):
        mgr = LotManager(1000, clock=clock, enforcement="nest")
        lot = mgr.create_lot("v", 500, duration=10, volatile=True)
        clock.now = 20.0
        mgr.expire_lots()
        assert lot.state is LotState.BEST_EFFORT
