"""Unit tests for the zero-copy fast transfer layer (repro.nest.io)."""

import io
import os
import socket
import threading
import zlib

import pytest

from repro.faults.plan import FaultPlan
from repro.nest import io as fastio
from repro.nest.config import NestConfig
from repro.nest.transfer import (LEGACY, POOLED, SENDFILE, TransferManager)

PAYLOAD = (bytes(range(256)) * 4099)[: 1_000_003]  # ~1 MB, odd size
PAYLOAD_CRC = zlib.crc32(PAYLOAD) & 0xFFFFFFFF


@pytest.fixture
def manager():
    tm = TransferManager(NestConfig(transfer_workers=4))
    yield tm
    tm.shutdown()


class TestBufferPool:
    def test_reuse_after_release(self):
        pool = fastio.BufferPool(buffer_bytes=64, max_buffers=2)
        a = pool.acquire()
        pool.release(a)
        b = pool.acquire()
        assert b is a  # the ring really recycles
        assert pool.hits == 1 and pool.misses == 1

    def test_overlapping_acquires_get_distinct_buffers(self):
        pool = fastio.BufferPool(buffer_bytes=64, max_buffers=4)
        a, b = pool.acquire(), pool.acquire()
        assert a is not b
        assert pool.outstanding == 2
        pool.release(a)
        pool.release(b)
        assert pool.outstanding == 0

    def test_ring_is_bounded(self):
        pool = fastio.BufferPool(buffer_bytes=8, max_buffers=1)
        bufs = [pool.acquire() for _ in range(3)]
        for buf in bufs:
            pool.release(buf)
        assert pool.snapshot()["free"] == 1

    def test_foreign_sized_buffer_not_pooled(self):
        pool = fastio.BufferPool(buffer_bytes=16, max_buffers=4)
        pool.release(bytearray(7))
        assert pool.snapshot()["free"] == 0

    def test_concurrent_churn_keeps_counters_consistent(self):
        pool = fastio.BufferPool(buffer_bytes=32, max_buffers=8)
        barrier = threading.Barrier(8)

        def churn():
            barrier.wait()
            for _ in range(200):
                buf = pool.acquire()
                buf[0] = 1
                pool.release(buf)

        threads = [threading.Thread(target=churn) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = pool.snapshot()
        assert snap["outstanding"] == 0
        assert snap["hits"] + snap["misses"] == 8 * 200
        assert 0.0 <= snap["hit_rate"] <= 1.0


class TestCopyStream:
    def test_readinto_path_matches_payload_and_crc(self):
        sink = io.BytesIO()
        moved, crc = fastio.copy_stream(io.BytesIO(PAYLOAD), sink)
        assert moved == len(PAYLOAD)
        assert sink.getvalue() == PAYLOAD
        assert crc == PAYLOAD_CRC

    def test_read_fallback_path_is_bit_identical(self):
        class ReadOnly:
            """No class-level readinto: forces the read() fallback."""

            def __init__(self, data):
                self._bio = io.BytesIO(data)

            def read(self, n=-1):
                return self._bio.read(n)

        sink = io.BytesIO()
        moved, crc = fastio.copy_stream(ReadOnly(PAYLOAD), sink)
        assert (moved, crc) == (len(PAYLOAD), PAYLOAD_CRC)
        assert sink.getvalue() == PAYLOAD

    def test_bounded_length(self):
        sink = io.BytesIO()
        moved, crc = fastio.copy_stream(io.BytesIO(PAYLOAD), sink, 1000)
        assert moved == 1000
        assert sink.getvalue() == PAYLOAD[:1000]
        assert crc == zlib.crc32(PAYLOAD[:1000]) & 0xFFFFFFFF

    def test_crc_seed_chains_across_calls(self):
        sink = io.BytesIO()
        _, crc = fastio.copy_stream(io.BytesIO(PAYLOAD[:500]), sink)
        _, crc = fastio.copy_stream(io.BytesIO(PAYLOAD[500:]), sink, crc=crc)
        assert crc == PAYLOAD_CRC

    def test_stream_crc32_single_pass(self):
        crc, nbytes = fastio.stream_crc32(io.BytesIO(PAYLOAD))
        assert (crc, nbytes) == (PAYLOAD_CRC, len(PAYLOAD))


class TestEligibility:
    def test_real_fileno_rejects_memory_streams(self):
        assert fastio.real_fileno(io.BytesIO()) is None

    def test_real_fileno_rejects_getattr_forwarders(self, tmp_path):
        path = tmp_path / "x.dat"
        path.write_bytes(b"data")
        with open(path, "rb") as f:
            assert fastio.real_fileno(f) is not None

            class Forwarder:
                def __init__(self, raw):
                    self._raw = raw

                def read(self, n=-1):
                    return self._raw.read(n)

                def __getattr__(self, name):
                    return getattr(self._raw, name)

            wrapper = Forwarder(f)
            assert wrapper.fileno() == f.fileno()  # forwards fine...
            assert fastio.real_fileno(wrapper) is None  # ...but not trusted
            assert not fastio.supports_readinto(wrapper)


class TestStrategyParity:
    """The same bytes arrive whichever pump the transfer picks."""

    def _recv_all(self, sock):
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
        return b"".join(chunks)

    def _send_to_socket(self, manager, source, total):
        left, right = socket.socketpair()
        received = []
        drain = threading.Thread(
            target=lambda: received.append(self._recv_all(right)))
        drain.start()
        out = left.makefile("wb")
        try:
            transfer = manager.submit(source, out, total, protocol="chirp")
            moved = transfer.wait(30)
            out.flush()
        finally:
            out.close()
            left.close()
        drain.join(timeout=30)
        right.close()
        return moved, received[0], transfer

    @pytest.mark.skipif(not fastio.sendfile_available,
                        reason="platform has no os.sendfile")
    def test_sendfile_and_pooled_paths_deliver_identical_bytes(
            self, manager, tmp_path):
        path = tmp_path / "payload.dat"
        path.write_bytes(PAYLOAD)
        before = fastio.COUNTERS.snapshot()
        with open(path, "rb") as f:
            moved_sf, data_sf, t_sf = self._send_to_socket(
                manager, f, len(PAYLOAD))
        assert t_sf.strategy == SENDFILE
        assert fastio.COUNTERS.snapshot()["sendfile_sends"] \
            > before["sendfile_sends"]

        moved_po, data_po, t_po = self._send_to_socket(
            manager, io.BytesIO(PAYLOAD), len(PAYLOAD))
        assert t_po.strategy == POOLED

        assert moved_sf == moved_po == len(PAYLOAD)
        assert data_sf == data_po == PAYLOAD
        # The buffered path folds the CRC in-stream for free.
        assert t_po.crc == PAYLOAD_CRC

    def test_fault_wrapped_sink_demotes_to_guarded_path(
            self, manager, tmp_path):
        """A fault-wrapped connection must never be sendfile'd past the
        plan: the transfer stays on the honest write path and the
        injected reset still fires."""
        path = tmp_path / "payload.dat"
        path.write_bytes(PAYLOAD)
        plan = FaultPlan.reset_once(after_bytes=20000, connection=1,
                                    op="write")
        left, right = socket.socketpair()
        wrapped = plan.wrap_socket(left, label="test")
        received = []
        drain = threading.Thread(
            target=lambda: received.append(self._recv_all(right)))
        drain.start()
        out = wrapped.makefile("wb")
        with open(path, "rb") as f:
            transfer = manager.submit(f, out, len(PAYLOAD),
                                      protocol="chirp")
            assert transfer.strategy != SENDFILE
            with pytest.raises(Exception):
                transfer.wait(30)
        wrapped.close()
        drain.join(timeout=30)
        right.close()
        assert plan.fired("reset") == 1
        assert len(received[0]) < len(PAYLOAD)

    def test_fault_short_write_truncates_stream_mid_payload(
            self, manager, tmp_path):
        """A SHORT fault ends the wrapped stream early even though the
        pooled pump hands the layer large chunks -- the fault layer
        accounts writes in bounded slices."""
        path = tmp_path / "payload.dat"
        path.write_bytes(PAYLOAD)
        plan = FaultPlan.short_read(after_bytes=20000, connection=1)
        left, right = socket.socketpair()
        wrapped = plan.wrap_socket(left, label="test")
        received = []
        drain = threading.Thread(
            target=lambda: received.append(self._recv_all(right)))
        drain.start()
        out = wrapped.makefile("wb")
        with open(path, "rb") as f:
            transfer = manager.submit(f, out, len(PAYLOAD),
                                      protocol="chirp")
            try:
                transfer.wait(30)
            except Exception:
                pass  # a torn stream may surface as a write error
        wrapped.close()
        drain.join(timeout=30)
        right.close()
        assert plan.fired("short") == 1
        assert len(received[0]) < len(PAYLOAD)

    def test_legacy_source_strategy_for_plain_readers(self, manager):
        class ReadOnly:
            def __init__(self, data):
                self._bio = io.BytesIO(data)

            def read(self, n=-1):
                return self._bio.read(n)

        sink = io.BytesIO()
        transfer = manager.submit(ReadOnly(PAYLOAD), sink,
                                  len(PAYLOAD), protocol="chirp")
        assert transfer.strategy == LEGACY
        assert transfer.wait(30) == len(PAYLOAD)
        assert sink.getvalue() == PAYLOAD
        assert transfer.crc == PAYLOAD_CRC


class TestMetrics:
    def test_register_metrics_exposes_counters(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        fastio.register_metrics(registry)
        snap = registry.snapshot()
        assert "nest_fastpath_sendfile_sends" in snap
        assert "nest_buffer_pool_hit_rate" in snap
        # Idempotent: a second server in-process must not explode.
        fastio.register_metrics(registry)
