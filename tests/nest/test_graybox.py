"""Unit tests for the gray-box cache estimator."""

from repro.nest.graybox import GrayBoxCacheModel


def model(blocks=4, bs=100):
    return GrayBoxCacheModel(assumed_capacity_bytes=blocks * bs, block_size=bs)


class TestPredictions:
    def test_unseen_file_not_resident(self):
        g = model()
        assert g.predict_residency("f", 400) == 0.0
        assert not g.predict_resident("f", 400)

    def test_observed_read_becomes_resident(self):
        g = model()
        g.observe_read("f", 0, 400)
        assert g.predict_resident("f", 400)

    def test_partial_residency(self):
        g = model(blocks=8)
        g.observe_read("f", 0, 200)
        assert g.predict_residency("f", 800) == 0.25

    def test_writes_count_as_resident(self):
        g = model()
        g.observe_write("f", 0, 200)
        assert g.predict_residency("f", 200) == 1.0

    def test_lru_displacement_tracked(self):
        g = model(blocks=2)
        g.observe_read("a", 0, 200)
        g.observe_read("b", 0, 200)  # displaces a in the shadow
        assert not g.predict_resident("a", 200)
        assert g.predict_resident("b", 200)

    def test_delete_invalidates(self):
        g = model()
        g.observe_read("f", 0, 100)
        g.observe_delete("f")
        assert g.predict_residency("f", 100) == 0.0

    def test_estimate_is_fallible_by_design(self):
        # The gray-box model cannot see other processes' I/O: if the
        # kernel cached a file NeST never touched, the estimate misses
        # it.  This divergence is inherent to the technique.
        g = model()
        assert g.predict_residency("cached-by-someone-else", 100) == 0.0

    def test_threshold_parameter(self):
        g = model(blocks=8)
        g.observe_read("f", 0, 700)
        assert g.predict_resident("f", 800, threshold=0.8)
        assert not g.predict_resident("f", 800, threshold=0.95)
