"""Event loop and server-model switcher: units plus a live flip.

The EventLoop tests drive the loop with a minimal echo handler over
socketpairs -- no NestServer, no protocols -- to pin the park /
dispatch / re-park / retire cycle and the two-phase shutdown.  The
switcher tests inject signal callables and a fake clock so the policy
is exercised without sockets at all.  The final test is the
acceptance-criterion one: a real adaptive-mode server demonstrably
flips to the event architecture under connection load.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.nest.concurrency import EVENTS, THREADS, ServerModelSwitcher
from repro.nest.config import NestConfig
from repro.nest.eventserver import EventLoop


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class EchoHandler:
    """Minimal event-capable handler: echo whatever arrives."""

    def __init__(self, sock):
        self.sock = sock
        self.served = 0
        self.finished = threading.Event()

    def fileno(self):
        return self.sock.fileno()

    def step(self):
        try:
            data = self.sock.recv(4096)
        except OSError:
            return False
        if not data:
            return False
        self.served += 1
        self.sock.sendall(data)
        return True

    def force_close(self):
        try:
            self.sock.close()
        except OSError:
            pass

    def finish(self):
        self.force_close()
        self.finished.set()


class TestEventLoop:
    def test_park_dispatch_repark_retire_cycle(self):
        loop = EventLoop(workers=2, name="evt-cycle")
        try:
            client, server_side = socket.socketpair()
            client.settimeout(5.0)
            handler = EchoHandler(server_side)
            assert loop.adopt(handler)
            # Each round trip is one dispatch followed by a re-park.
            for _ in range(3):
                client.sendall(b"ping")
                assert client.recv(4096) == b"ping"
            assert handler.served == 3
            assert loop.dispatches >= 3
            assert loop.live() == 1
            # EOF from the client retires the connection.
            client.close()
            assert handler.finished.wait(5.0)
            assert _wait_until(lambda: loop.live() == 0)
            assert loop.retired == 1
        finally:
            loop.begin_shutdown()
            loop.finish_shutdown()

    def test_many_parked_connections_one_fixed_pool(self):
        loop = EventLoop(workers=2, name="evt-many")
        pairs = [socket.socketpair() for _ in range(50)]
        handlers = [EchoHandler(s) for _, s in pairs]
        try:
            for handler in handlers:
                assert loop.adopt(handler)
            assert _wait_until(lambda: loop.live() == 50)
            # Parked connections hold no thread: the only new threads
            # are the loop itself plus at most `workers` pool threads.
            names = [t.name for t in threading.enumerate()
                     if t.name.startswith("evt-many")]
            assert len(names) <= 3
            # All 50 still respond.
            for client, _ in pairs:
                client.settimeout(5.0)
                client.sendall(b"x")
                assert client.recv(4096) == b"x"
            # Let the last dispatches re-park before the drain so the
            # forced-straggler count below is deterministic.
            assert _wait_until(lambda: loop.busy_count() == 0)
        finally:
            loop.begin_shutdown()
            forced = loop.finish_shutdown()
            for client, _ in pairs:
                client.close()
        # Idle connections were retired by the drain, none forced.
        assert forced == 0
        assert all(h.finished.is_set() for h in handlers)

    def test_shutdown_refuses_new_adoptions(self):
        loop = EventLoop(workers=1, name="evt-stop")
        loop.begin_shutdown()
        client, server_side = socket.socketpair()
        handler = EchoHandler(server_side)
        assert not loop.adopt(handler)  # caller keeps ownership
        handler.finish()
        client.close()
        assert loop.finish_shutdown() == 0
        # Pool threads joined: nothing left bearing the loop's name.
        assert not [t for t in threading.enumerate()
                    if t.name.startswith("evt-stop")]


class TestServerModelSwitcher:
    def test_flips_to_events_at_high_connections(self):
        conns = {"n": 0}
        sw = ServerModelSwitcher(connections=lambda: conns["n"],
                                 high=10, low=2, interval=0.0)
        assert sw.choose() == THREADS
        conns["n"] = 10
        assert sw.choose() == EVENTS
        assert sw.flips == 1
        assert sw.last_signals["connections"] == 10

    def test_queue_depth_alone_triggers_events(self):
        depth = {"n": 0}
        sw = ServerModelSwitcher(connections=lambda: 1,
                                 queue_depth=lambda: depth["n"],
                                 high=10, low=2, interval=0.0)
        assert sw.choose() == THREADS
        depth["n"] = 10
        assert sw.choose() == EVENTS

    def test_hysteresis_holds_in_middle_band(self):
        conns = {"n": 10}
        sw = ServerModelSwitcher(connections=lambda: conns["n"],
                                 high=10, low=2, interval=0.0)
        assert sw.choose() == EVENTS
        conns["n"] = 5  # between low and high: no flap
        assert sw.choose() == EVENTS
        conns["n"] = 9
        assert sw.choose() == EVENTS
        assert sw.flips == 1

    def test_low_load_follows_measured_goodput(self):
        conns = {"n": 10}
        sw = ServerModelSwitcher(connections=lambda: conns["n"],
                                 high=10, low=2, interval=0.0)
        assert sw.choose() == EVENTS
        # Evidence: under light load the threaded path served requests
        # an order of magnitude faster than the event path.
        for _ in range(8):
            sw.report(THREADS, 1, 0.001)
            sw.report(EVENTS, 1, 0.1)
        conns["n"] = 1
        assert sw.choose() == THREADS
        assert sw.flips == 2

    def test_interval_gates_signal_reads(self):
        now = {"t": 0.0}
        reads = {"n": 0}

        def conns():
            reads["n"] += 1
            return 100

        sw = ServerModelSwitcher(connections=conns, high=10, low=2,
                                 interval=1.0, clock=lambda: now["t"])
        assert sw.choose() == EVENTS
        assert reads["n"] == 1
        for _ in range(20):  # within the interval: cached decision
            sw.choose()
        assert reads["n"] == 1
        now["t"] = 1.5
        sw.choose()
        assert reads["n"] == 2

    def test_slo_degradation_forces_the_event_model(self):
        degraded = {"v": False}
        sw = ServerModelSwitcher(connections=lambda: 1,
                                 slo_degraded=lambda: degraded["v"],
                                 high=10, low=2, interval=0.0)
        assert sw.choose() == THREADS
        degraded["v"] = True  # burn rate blew the budget: shed threads
        assert sw.choose() == EVENTS
        assert sw.last_signals["slo_degraded"] is True
        degraded["v"] = False
        conns_low = sw.choose()  # connections=1 <= low: recover
        assert conns_low == THREADS

    def test_every_flip_counts_and_emits_a_span(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.spans import SpanRecorder, Tracer

        registry = MetricsRegistry()
        recorder = SpanRecorder()
        conns = {"n": 0}
        sw = ServerModelSwitcher(
            connections=lambda: conns["n"], high=10, low=2, interval=0.0,
            registry=registry,
            tracer=Tracer(recorder=recorder, service="switcher"))
        conns["n"] = 50
        assert sw.choose() == EVENTS
        conns["n"] = 0
        assert sw.choose() == THREADS
        counts = registry.snapshot()["server_model_switch_total"]["series"]
        assert counts[EVENTS] == 1
        assert counts[THREADS] == 1
        spans = [s for s in recorder.spans()
                 if s.name == "server.model_switch"]
        assert [s.attributes["to"] for s in spans] == [EVENTS, THREADS]
        # The span carries the signals that justified the decision.
        assert spans[0].attributes["connections"] == 50
        assert spans[0].attributes["slo_degraded"] is False


class TestAdaptiveServerFlip:
    def test_server_flips_to_events_under_connection_load(self):
        from repro.nest.server import NestServer

        config = NestConfig(name="adapt-flip", protocols=("chirp",),
                            concurrency_server="adaptive",
                            server_switch_high=8, server_switch_low=2,
                            server_switch_interval=0.0,
                            management=False)
        with NestServer(config) as srv:
            assert srv._switcher is not None
            assert srv._switcher.model == THREADS
            host, port = srv.endpoint("chirp")
            socks = []
            try:
                # The accept loop registers each threaded handler
                # before accepting the next connection, so by the time
                # the ramp passes the high-water mark the switcher's
                # connection signal has crossed it too.
                for _ in range(16):
                    socks.append(socket.create_connection((host, port),
                                                          timeout=5.0))
                assert _wait_until(lambda: srv._switcher.model == EVENTS)
                assert srv._switcher.flips >= 1
                # Post-flip accepts really landed on the event loop.
                assert _wait_until(lambda: srv._eventloop.live() > 0)
                assert srv.active_connections() == 16
            finally:
                for sock in socks:
                    sock.close()
