"""Unit tests for AFS-style ACLs over ClassAd collections."""

import pytest

from repro.nest.acl import (
    ALL,
    ALL_RIGHTS,
    AccessControl,
    AclError,
    Rights,
    default_acl,
)


class TestRights:
    def test_parse_letters(self):
        r = Rights.parse("rl")
        assert "r" in r and "l" in r and "w" not in r

    def test_parse_all_none(self):
        assert str(Rights.parse("all")) == ALL_RIGHTS
        assert str(Rights.parse("none")) == ""
        assert str(Rights.parse("")) == ""

    def test_canonical_ordering(self):
        assert str(Rights.parse("lr")) == "rl"

    def test_unknown_letter_rejected(self):
        with pytest.raises(AclError):
            Rights.parse("rz")

    def test_union(self):
        assert str(Rights.parse("r").union(Rights.parse("w"))) == "rw"


class TestAccessControl:
    def test_owner_gets_all(self):
        acl = default_acl("alice", anonymous_rights="")
        for letter in ALL_RIGHTS:
            assert acl.allows("alice", letter)

    def test_stranger_gets_nothing(self):
        acl = default_acl("alice", anonymous_rights="")
        assert not acl.allows("bob", "r")

    def test_anonymous_default_read_lookup(self):
        acl = default_acl("alice", anonymous_rights="rl")
        assert acl.allows("whoever", "r")
        assert acl.allows("whoever", "l")
        assert not acl.allows("whoever", "w")

    def test_set_entry_replaces(self):
        acl = AccessControl()
        acl.set_entry("bob", "rl")
        acl.set_entry("bob", "w")
        assert not acl.allows("bob", "r")
        assert acl.allows("bob", "w")

    def test_drop_entry(self):
        acl = AccessControl()
        acl.set_entry("bob", "rw")
        acl.drop_entry("bob")
        assert not acl.allows("bob", "r")
        assert acl.listing() == []

    def test_subject_case_insensitive(self):
        acl = AccessControl()
        acl.set_entry("Bob", "r")
        assert acl.allows("bob", "r")

    def test_rights_union_across_entries(self):
        acl = AccessControl(groups={"team": {"bob"}})
        acl.set_entry("bob", "r")
        acl.set_entry("group:team", "w")
        assert acl.allows("bob", "r") and acl.allows("bob", "w")

    def test_group_membership(self):
        acl = AccessControl(groups={"wind": {"alice", "bob"}})
        acl.set_entry("group:wind", "rwl")
        assert acl.allows("alice", "w")
        assert not acl.allows("carol", "w")

    def test_empty_subject_rejected(self):
        acl = AccessControl()
        with pytest.raises(AclError):
            acl.set_entry("", "r")

    def test_unknown_right_check_rejected(self):
        acl = AccessControl()
        with pytest.raises(AclError):
            acl.allows("bob", "z")

    def test_listing(self):
        acl = AccessControl()
        acl.set_entry("a", "rl")
        acl.set_entry("b", ALL)
        listing = dict(acl.listing())
        assert listing == {"a": "rl", "b": ALL_RIGHTS}

    def test_copy_independent(self):
        acl = AccessControl()
        acl.set_entry("a", "r")
        dup = acl.copy()
        dup.set_entry("a", "w")
        assert acl.allows("a", "r") and not acl.allows("a", "w")

    def test_copy_shares_groups(self):
        groups = {"g": {"x"}}
        acl = AccessControl(groups=groups)
        dup = acl.copy()
        assert dup.groups is groups
