"""Unit tests for the transfer schedulers (pure logic)."""

import pytest

from repro.nest.scheduling import (
    CacheAwareScheduler,
    FCFSScheduler,
    StrideScheduler,
    make_job,
    make_scheduler,
)


def drive(scheduler, quanta, quantum=1000):
    """Run the scheduler for ``quanta`` decisions; returns bytes/job."""
    moved = {}
    for _ in range(quanta):
        job = scheduler.select()
        if job is None:
            break
        amount = min(quantum, job.available)
        scheduler.charge(job, amount)
        moved[job.job_id] = moved.get(job.job_id, 0) + amount
    return moved


class TestFCFS:
    def test_serves_in_enqueue_order(self):
        sched = FCFSScheduler()
        a = make_job("http")
        b = make_job("chirp")
        a.enqueue_seq, b.enqueue_seq = 2, 1
        sched.add(a)
        sched.add(b)
        assert sched.select() is b

    def test_skips_unready(self):
        sched = FCFSScheduler()
        a = make_job("http")
        b = make_job("chirp")
        a.enqueue_seq, b.enqueue_seq = 1, 2
        a.ready = False
        sched.add(a)
        sched.add(b)
        assert sched.select() is b

    def test_empty_returns_none(self):
        assert FCFSScheduler().select() is None

    def test_remove(self):
        sched = FCFSScheduler()
        a = make_job("http")
        sched.add(a)
        sched.remove(a)
        assert sched.select() is None
        assert not sched.has_ready()


class TestStrideProportions:
    def proportions(self, shares, rounds=4000):
        sched = StrideScheduler(shares=shares)
        jobs = {proto: make_job(proto) for proto in shares}
        for job in jobs.values():
            sched.add(job)
        moved = drive(sched, rounds)
        total = sum(moved.values())
        return {proto: moved.get(job.job_id, 0) / total
                for proto, job in jobs.items()}

    def test_equal_shares(self):
        p = self.proportions({"a": 1, "b": 1})
        assert p["a"] == pytest.approx(0.5, abs=0.01)

    def test_two_to_one(self):
        p = self.proportions({"a": 2, "b": 1})
        assert p["a"] == pytest.approx(2 / 3, abs=0.01)

    def test_four_way(self):
        p = self.proportions({"a": 3, "b": 1, "c": 2, "d": 1})
        assert p["a"] == pytest.approx(3 / 7, abs=0.01)
        assert p["c"] == pytest.approx(2 / 7, abs=0.01)

    def test_byte_based_accounting(self):
        # A job charged in small blocks must get the same share as one
        # charged in big chunks -- the paper's byte-based strides.
        sched = StrideScheduler(shares={"nfs": 1, "http": 1})
        nfs = make_job("nfs")
        http = make_job("http")
        sched.add(nfs)
        sched.add(http)
        moved = {nfs.job_id: 0, http.job_id: 0}
        for _ in range(10000):
            job = sched.select()
            amount = 80 if job is nfs else 10000  # NFS in tiny blocks
            sched.charge(job, amount)
            moved[job.job_id] += amount
        ratio = moved[nfs.job_id] / moved[http.job_id]
        assert ratio == pytest.approx(1.0, abs=0.05)

    def test_class_tickets_split_among_jobs(self):
        # 2 jobs in class a (share 1) vs 1 job in class b (share 1):
        # class totals must still be 50/50.
        sched = StrideScheduler(shares={"a": 1, "b": 1})
        a1, a2, b1 = make_job("a"), make_job("a"), make_job("b")
        for j in (a1, a2, b1):
            sched.add(j)
        moved = drive(sched, 3000)
        class_a = moved.get(a1.job_id, 0) + moved.get(a2.job_id, 0)
        class_b = moved.get(b1.job_id, 0)
        assert class_a / (class_a + class_b) == pytest.approx(0.5, abs=0.02)

    def test_new_job_enters_at_min_pass(self):
        sched = StrideScheduler(shares={"a": 1})
        old = make_job("a")
        sched.add(old)
        drive(sched, 100)
        newcomer = make_job("a")
        sched.add(newcomer)
        # The newcomer enters at the minimum pass (no banked debt, no
        # free credit) and receives its fair share from here on.
        assert newcomer.pass_value == old.pass_value
        moved = drive(sched, 1000)
        share = moved[newcomer.job_id] / sum(moved.values())
        assert share == pytest.approx(0.5, abs=0.05)


class TestStrideReadiness:
    def test_work_conserving_gives_slot_away(self):
        sched = StrideScheduler(shares={"nfs": 4, "http": 1},
                                work_conserving=True)
        nfs = make_job("nfs")
        http = make_job("http")
        sched.add(nfs)
        sched.add(http)
        nfs.ready = False  # no NFS request outstanding
        assert sched.select() is http

    def test_non_work_conserving_waits_for_rightful_job(self):
        sched = StrideScheduler(shares={"nfs": 4, "http": 1},
                                work_conserving=False)
        nfs = make_job("nfs")
        http = make_job("http")
        sched.add(nfs)
        sched.add(http)
        sched.charge(http, 1000)  # http pass is now ahead... of nfs's 0
        nfs.ready = False
        assert sched.select() is None  # idle rather than schedule http

    def test_non_work_conserving_proceeds_when_rightful_ready(self):
        sched = StrideScheduler(shares={"a": 1}, work_conserving=False)
        a = make_job("a")
        sched.add(a)
        assert sched.select() is a


class TestCacheAware:
    def test_resident_first(self):
        residency = {"hot": 1.0, "cold": 0.0}
        sched = CacheAwareScheduler(lambda path, size: residency[path])
        cold = make_job("http", path="cold", total_bytes=10)
        hot = make_job("http", path="hot", total_bytes=10)
        cold.arrival_seq, hot.arrival_seq = 1, 2  # cold arrived first
        sched.add(cold)
        sched.add(hot)
        assert sched.select() is hot

    def test_fifo_within_tier(self):
        sched = CacheAwareScheduler(lambda path, size: 1.0)
        first = make_job("http", path="a")
        second = make_job("http", path="b")
        first.arrival_seq, second.arrival_seq = 1, 2
        sched.add(second)
        sched.add(first)
        assert sched.select() is first

    def test_in_flight_jobs_keep_priority(self):
        residency = {"hot": 1.0, "cold": 0.0}
        sched = CacheAwareScheduler(lambda path, size: residency[path])
        cold = make_job("http", path="cold", total_bytes=10)
        sched.add(cold)
        sched.charge(cold, 5)  # cold already started
        hot = make_job("http", path="hot", total_bytes=10)
        hot.arrival_seq = cold.arrival_seq + 1
        sched.add(hot)
        assert sched.select() is cold

    def test_threshold(self):
        sched = CacheAwareScheduler(lambda path, size: 0.5, threshold=0.4)
        job = make_job("http", path="x", total_bytes=10)
        sched.add(job)
        assert sched._tier(job) == 0


class TestFactory:
    def test_make_named_schedulers(self):
        assert isinstance(make_scheduler("fcfs"), FCFSScheduler)
        assert isinstance(make_scheduler("stride", shares={"a": 1}),
                          StrideScheduler)
        assert isinstance(
            make_scheduler("cache-aware", residency=lambda p, s: 1.0),
            CacheAwareScheduler,
        )

    def test_cache_aware_requires_predictor(self):
        with pytest.raises(ValueError):
            make_scheduler("cache-aware")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_scheduler("lottery")
