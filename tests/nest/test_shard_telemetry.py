"""Shard telemetry: workers ship snapshots, the parent serves the fleet.

A live two-worker group (real spawned processes) under a short
telemetry interval.  The parent's FleetManagementEndpoint must expose
the merged view -- summed counters, shard-labelled gauges, a merged
Chrome trace with one pid per worker, and per-shard SLO reports --
while the health control plane keeps working over the same pipes, and
stop() must tear it all down without leaking parent-side threads.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.client.http import HttpClient
from repro.nest.config import NestConfig
from repro.nest.shard import ShardGroup, shard_root
from repro.obs.export_chrome import validate_trace
from repro.obs.spans import SpanRecorder, Tracer


@pytest.fixture(scope="module")
def group():
    config = NestConfig(name="tele", protocols=("chirp", "http"),
                        telemetry_interval=0.1)
    with ShardGroup(2, config=config) as grp:
        # Give every worker traced traffic so both ship request spans.
        tracer = Tracer(recorder=SpanRecorder(), service="tele-test")
        root = tracer.start_trace("fixture.traffic")
        with root:
            for index in range(2):
                with HttpClient(*grp.direct_http_endpoint(index)) as c:
                    path = f"{shard_root(index)}/t.bin"
                    c.put(path, b"tele" * 128)
                    assert c.get(path) == b"tele" * 128
        grp.fixture_trace_id = root.trace_id
        yield grp


def _fetch(group, path, timeout=10.0):
    base = f"http://{group.mgmt.host}:{group.mgmt.port}"
    return urllib.request.urlopen(base + path, timeout=timeout).read()


def _await_metrics(group, *needles, timeout=10.0):
    deadline = time.monotonic() + timeout
    text = ""
    while time.monotonic() < deadline:
        text = _fetch(group, "/metrics").decode()
        if all(n in text for n in needles):
            return text
        time.sleep(0.1)
    return text


class TestFleetEndpoint:
    def test_metrics_merge_counters_and_label_gauges(self, group):
        text = _await_metrics(group, 'shard="0"', 'shard="1"',
                              "nest_connections_total")
        assert 'shard="0"' in text and 'shard="1"' in text, \
            "gauges lost their per-shard series"
        # Counters merge into a single summed series -- never
        # shard-labelled, or rate() over the fleet would double-count.
        for line in text.splitlines():
            if line.startswith("nest_connections_total"):
                assert 'shard=' not in line

    def test_trace_merges_one_pid_per_worker(self, group):
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            doc = json.loads(_fetch(group, "/trace"))
            pids = {e["pid"] for e in doc["traceEvents"]
                    if e.get("ph") == "X"}
            if len(pids) >= 2:
                break
            time.sleep(0.1)
        assert len(pids) >= 2, "spans from both workers never arrived"
        assert pids == {w.pid for w in group.workers}
        assert validate_trace(doc) == []

    def test_worker_spans_carry_the_client_trace(self, group):
        deadline = time.monotonic() + 10.0
        traced = []
        while time.monotonic() < deadline and not traced:
            doc = json.loads(_fetch(group, "/trace"))
            traced = [e for e in doc["traceEvents"]
                      if e.get("ph") == "X"
                      and e.get("args", {}).get("trace_id")
                      == group.fixture_trace_id]
            time.sleep(0.1)
        assert traced, "no worker span joined the fixture's trace"

    def test_slo_reports_per_shard(self, group):
        deadline = time.monotonic() + 10.0
        report = {}
        while time.monotonic() < deadline:
            report = json.loads(_fetch(group, "/slo"))
            if set(report) == {"0", "1"}:
                break
            time.sleep(0.1)
        assert set(report) == {"0", "1"}
        for shard in report.values():
            assert "degraded" in shard
            assert "objectives" in shard

    def test_health_survives_concurrent_telemetry(self, group):
        # Telemetry messages interleave on the same pipes; the health
        # transaction must still find its reply every time.
        for _ in range(5):
            reports = group.health()
            assert sorted(r["index"] for r in reports) == [0, 1]
            assert all(r["alive"] for r in reports)


def test_stop_drains_without_leaking_threads():
    before = set(threading.enumerate())
    config = NestConfig(name="tele-stop", telemetry_interval=0.1)
    grp = ShardGroup(2, config=config)
    grp.start()
    # Let at least one telemetry cycle land before tearing down.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline and not grp.fleet_snapshots():
        time.sleep(0.05)
    assert grp.fleet_snapshots(), "no telemetry arrived before stop"
    grp.stop()
    leaked = [t for t in threading.enumerate()
              if t not in before and t.is_alive()]
    assert not leaked, f"shard teardown leaked threads: {leaked}"
