"""Unit tests for the storage manager."""

import pytest

from repro.nest.storage import StorageError, StorageManager
from repro.protocols.common import Request, RequestType, Status


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def sm(clock):
    mgr = StorageManager(clock=clock)
    mgr.mkdir("alice", "/data")
    return mgr


def put(sm, user, path, payload: bytes):
    ticket = sm.approve_put(user, path, len(payload))
    ticket.stream.write(payload)
    ticket.settle(len(payload))


def get(sm, user, path) -> bytes:
    ticket = sm.approve_get(user, path)
    try:
        return ticket.stream.read()
    finally:
        ticket.settle(ticket.size)


class TestNamespace:
    def test_mkdir_listdir(self, sm):
        sm.mkdir("alice", "/data/sub")
        names = [e["name"] for e in sm.listdir("alice", "/data")]
        assert names == ["sub"]

    def test_mkdir_duplicate(self, sm):
        with pytest.raises(StorageError) as info:
            sm.mkdir("alice", "/data")
        assert info.value.status is Status.EXISTS

    def test_mkdir_missing_parent(self, sm):
        with pytest.raises(StorageError) as info:
            sm.mkdir("alice", "/no/such/deep")
        assert info.value.status is Status.NOT_FOUND

    def test_rmdir_empty_only(self, sm):
        sm.mkdir("alice", "/data/sub")
        put(sm, "alice", "/data/sub/f", b"x")
        with pytest.raises(StorageError) as info:
            sm.rmdir("alice", "/data/sub")
        assert info.value.status is Status.NOT_EMPTY
        sm.delete("alice", "/data/sub/f")
        sm.rmdir("alice", "/data/sub")
        assert not sm.exists("/data/sub")

    def test_stat_file_and_dir(self, sm):
        put(sm, "alice", "/data/f", b"hello")
        assert sm.stat("alice", "/data/f") == {
            "size": 5, "type": "file", "owner": "alice"
        }
        assert sm.stat("alice", "/data")["type"] == "dir"

    def test_rename_moves_data(self, sm):
        put(sm, "alice", "/data/a", b"payload")
        sm.mkdir("alice", "/data/dst")
        sm.rename("alice", "/data/a", "/data/dst/b")
        assert not sm.exists("/data/a")
        assert get(sm, "alice", "/data/dst/b") == b"payload"

    def test_rename_onto_existing_rejected(self, sm):
        put(sm, "alice", "/data/a", b"1")
        put(sm, "alice", "/data/b", b"2")
        with pytest.raises(StorageError) as info:
            sm.rename("alice", "/data/a", "/data/b")
        assert info.value.status is Status.EXISTS

    def test_delete_releases_space(self, sm):
        put(sm, "alice", "/data/f", b"12345")
        used = sm.used_bytes
        sm.delete("alice", "/data/f")
        assert sm.used_bytes == used - 5

    def test_path_traversal_components_ignored(self, sm):
        # Empty components collapse; the namespace has no "..".
        put(sm, "alice", "/data//f", b"x")
        assert sm.exists("/data/f")


class TestDataPath:
    def test_put_get_round_trip(self, sm):
        put(sm, "alice", "/data/f", b"content bytes")
        assert get(sm, "alice", "/data/f") == b"content bytes"

    def test_get_missing(self, sm):
        with pytest.raises(StorageError) as info:
            sm.approve_get("alice", "/data/nope")
        assert info.value.status is Status.NOT_FOUND

    def test_get_directory_rejected(self, sm):
        with pytest.raises(StorageError) as info:
            sm.approve_get("alice", "/data")
        assert info.value.status is Status.IS_DIR

    def test_put_settle_shrink_adjusts_size(self, sm):
        ticket = sm.approve_put("alice", "/data/f", 100)
        ticket.stream.write(b"abc")
        ticket.settle(3)
        assert sm.stat("alice", "/data/f")["size"] == 3

    def test_block_write_and_read(self, sm):
        t = sm.approve_write("alice", "/data/f", 0, 4)
        t.stream.write(b"abcd")
        t.settle(4)
        t = sm.approve_write("alice", "/data/f", 4, 4)
        t.stream.write(b"efgh")
        t.settle(4)
        t = sm.approve_read("alice", "/data/f", 2, 4)
        data = t.stream.read(4)
        t.settle(4)
        assert data == b"cdef"
        assert sm.stat("alice", "/data/f")["size"] == 8

    def test_block_read_clamped_to_eof(self, sm):
        put(sm, "alice", "/data/f", b"abc")
        t = sm.approve_read("alice", "/data/f", 2, 100)
        assert t.size == 1
        t.settle(1)

    def test_capacity_enforced(self, clock):
        small = StorageManager(capacity_bytes=10, clock=clock)
        small.mkdir("a", "/d")
        with pytest.raises(StorageError) as info:
            small.approve_put("a", "/d/f", 100)
        assert info.value.status is Status.NO_SPACE


class TestAclEnforcement:
    def test_write_denied_without_insert(self, sm):
        sm.acl_set("alice", "/data", "*", "rl")  # drop anonymous insert
        with pytest.raises(StorageError) as info:
            sm.approve_put("bob", "/data/f", 1)
        assert info.value.status is Status.DENIED

    def test_read_denied_without_read(self, sm):
        put(sm, "alice", "/data/f", b"secret")
        sm.acl_set("alice", "/data", "*", "l")
        with pytest.raises(StorageError):
            sm.approve_get("bob", "/data/f")

    def test_acl_set_requires_admin(self, sm):
        with pytest.raises(StorageError) as info:
            sm.acl_set("bob", "/data", "bob", "all")
        assert info.value.status is Status.DENIED

    def test_acl_get_lists_entries(self, sm):
        sm.acl_set("alice", "/data", "bob", "rwl")
        listing = dict(sm.acl_get("alice", "/data"))
        assert listing["bob"] == "rwl"

    def test_enforcement_is_protocol_independent(self, sm):
        # The same denial no matter which protocol made the request.
        sm.acl_set("alice", "/data", "*", "l")
        for proto in ("http", "nfs", "ftp"):
            req = Request(rtype=RequestType.DELETE, path="/data/x",
                          user="anonymous", protocol=proto)
            resp = sm.execute(req)
            assert resp.status in (Status.DENIED, Status.NOT_FOUND)


class TestLotIntegration:
    def test_write_requires_lot_when_configured(self, clock):
        sm = StorageManager(clock=clock, require_lots=True)
        sm.mkdir("alice", "/d")
        with pytest.raises(StorageError) as info:
            sm.approve_put("alice", "/d/f", 10)
        assert info.value.status is Status.NO_SPACE

    def test_write_within_lot(self, clock):
        sm = StorageManager(clock=clock, require_lots=True)
        sm.mkdir("alice", "/d")
        sm.lots.create_lot("alice", 100, duration=60)
        put(sm, "alice", "/d/f", b"x" * 50)
        assert sm.lots.total_used() == 50

    def test_delete_releases_lot_charge(self, clock):
        sm = StorageManager(clock=clock, require_lots=True)
        sm.mkdir("alice", "/d")
        sm.lots.create_lot("alice", 100, duration=60)
        put(sm, "alice", "/d/f", b"x" * 50)
        sm.delete("alice", "/d/f")
        assert sm.lots.total_used() == 0

    def test_reclaimed_file_disappears_from_namespace(self, clock):
        sm = StorageManager(clock=clock, require_lots=True,
                            capacity_bytes=1000)
        sm.mkdir("alice", "/d")
        sm.lots.create_lot("alice", 800, duration=10)
        put(sm, "alice", "/d/victim", b"v" * 700)
        clock.now = 50.0  # lot expires -> best effort
        sm.lots.create_lot("bob", 900, duration=60)
        assert not sm.exists("/d/victim")


class TestExecuteInterface:
    def test_execute_mkdir(self, sm):
        resp = sm.execute(Request(rtype=RequestType.MKDIR, path="/data/x",
                                  user="alice"))
        assert resp.ok
        assert sm.exists("/data/x")

    def test_execute_list(self, sm):
        put(sm, "alice", "/data/f", b"x")
        resp = sm.execute(Request(rtype=RequestType.LIST, path="/data",
                                  user="alice"))
        assert resp.ok and resp.data[0]["name"] == "f"

    def test_execute_error_mapped_to_status(self, sm):
        resp = sm.execute(Request(rtype=RequestType.STAT, path="/data/nope",
                                  user="alice"))
        assert resp.status is Status.NOT_FOUND

    def test_execute_lot_create_requires_auth(self, sm):
        resp = sm.execute(Request(rtype=RequestType.LOT_CREATE,
                                  user="anonymous",
                                  params={"capacity": 10, "duration": 10}))
        assert resp.status is Status.NOT_AUTHENTICATED

    def test_execute_lot_lifecycle(self, sm):
        create = sm.execute(Request(rtype=RequestType.LOT_CREATE, user="alice",
                                    params={"capacity": 100, "duration": 60}))
        assert create.ok
        lot_id = create.data["lot_id"]
        renew = sm.execute(Request(rtype=RequestType.LOT_RENEW, user="alice",
                                   params={"lot_id": lot_id, "duration": 120}))
        assert renew.ok
        stat = sm.execute(Request(rtype=RequestType.LOT_STAT, user="alice",
                                  params={"lot_id": lot_id}))
        assert stat.ok and stat.data["capacity"] == 100
        delete = sm.execute(Request(rtype=RequestType.LOT_DELETE, user="alice",
                                    params={"lot_id": lot_id}))
        assert delete.ok

    def test_execute_transfer_type_rejected(self, sm):
        resp = sm.execute(Request(rtype=RequestType.GET, path="/data/f"))
        assert resp.status is Status.BAD_REQUEST
