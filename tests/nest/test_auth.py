"""Unit tests for GSI-style authentication."""

import pytest

from repro.nest.auth import (
    AuthError,
    Certificate,
    CertificateAuthority,
    GSIContext,
)


@pytest.fixture
def ca():
    return CertificateAuthority(secret=b"test-secret" * 3)


class TestCertificates:
    def test_issue_and_verify(self, ca):
        cred = ca.issue("/O=Grid/CN=alice")
        assert ca.verify_certificate(cred.certificate)
        assert cred.subject == "/O=Grid/CN=alice"

    def test_other_ca_rejected(self, ca):
        other = CertificateAuthority(secret=b"different" * 4)
        cred = other.issue("mallory")
        assert not ca.verify_certificate(cred.certificate)

    def test_tampered_subject_rejected(self, ca):
        cred = ca.issue("alice")
        forged = Certificate(
            subject="root", issuer=cred.certificate.issuer,
            signature=cred.certificate.signature,
        )
        assert not ca.verify_certificate(forged)

    def test_wire_round_trip(self, ca):
        cred = ca.issue("alice")
        wire = cred.certificate.to_bytes()
        parsed = Certificate.from_bytes(wire)
        assert parsed == cred.certificate

    def test_malformed_wire_certificate(self):
        with pytest.raises(AuthError):
            Certificate.from_bytes(b"not json at all")
        with pytest.raises(AuthError):
            Certificate.from_bytes(b'{"subject": "x"}')


class TestHandshake:
    def test_full_handshake(self, ca):
        cred = ca.issue("alice")
        ctx = GSIContext(ca)
        cert_msg = GSIContext.initiate(cred)
        challenge = ctx.challenge()
        response = GSIContext.respond(cred, challenge)
        assert ctx.accept(cert_msg, challenge, response) == "alice"

    def test_wrong_key_rejected(self, ca):
        alice = ca.issue("alice")
        bob = ca.issue("bob")
        ctx = GSIContext(ca)
        challenge = ctx.challenge()
        # Bob presents Alice's certificate but signs with his own key.
        response = GSIContext.respond(bob, challenge)
        with pytest.raises(AuthError):
            ctx.accept(GSIContext.initiate(alice), challenge, response)

    def test_replayed_response_fails_fresh_challenge(self, ca):
        cred = ca.issue("alice")
        ctx = GSIContext(ca)
        old = ctx.challenge()
        replay = GSIContext.respond(cred, old)
        fresh = ctx.challenge()
        assert fresh != old
        with pytest.raises(AuthError):
            ctx.accept(GSIContext.initiate(cred), fresh, replay)

    def test_foreign_certificate_in_handshake(self, ca):
        foreign = CertificateAuthority(secret=b"x" * 16).issue("eve")
        ctx = GSIContext(ca)
        challenge = ctx.challenge()
        response = GSIContext.respond(foreign, challenge)
        with pytest.raises(AuthError):
            ctx.accept(GSIContext.initiate(foreign), challenge, response)
