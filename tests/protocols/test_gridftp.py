"""Unit tests for GridFTP extended-block mode and striping."""

import io

import pytest

from repro.protocols import gridftp
from repro.protocols.common import ProtocolError


class TestBlockFraming:
    def test_block_round_trip(self):
        buf = io.BytesIO()
        gridftp.write_block(buf, offset=4096, payload=b"hello")
        buf.seek(0)
        flags, offset, payload = gridftp.read_block(buf)
        assert (flags, offset, payload) == (0, 4096, b"hello")

    def test_eod_trailer(self):
        buf = io.BytesIO()
        gridftp.write_eod(buf)
        buf.seek(0)
        flags, _, payload = gridftp.read_block(buf)
        assert flags & gridftp.FLAG_EOD
        assert payload == b""

    def test_eod_with_eof(self):
        buf = io.BytesIO()
        gridftp.write_eod(buf, eof=True)
        buf.seek(0)
        flags, _, _ = gridftp.read_block(buf)
        assert flags & gridftp.FLAG_EOF and flags & gridftp.FLAG_EOD

    def test_iter_blocks_reassembles(self):
        buf = io.BytesIO()
        gridftp.write_block(buf, 0, b"aaaa")
        gridftp.write_block(buf, 8, b"cccc")
        gridftp.write_block(buf, 4, b"bbbb")
        gridftp.write_eod(buf)
        buf.seek(0)
        blocks = dict(gridftp.iter_blocks(buf))
        data = bytearray(12)
        for offset, payload in blocks.items():
            data[offset:offset + len(payload)] = payload
        assert bytes(data) == b"aaaabbbbcccc"

    def test_truncated_stream_rejected(self):
        buf = io.BytesIO()
        gridftp.write_block(buf, 0, b"full block")
        truncated = io.BytesIO(buf.getvalue()[:-3])
        with pytest.raises(ProtocolError):
            gridftp.read_block(truncated)


class TestStriping:
    def test_round_robin_assignment(self):
        lanes = gridftp.stripe_ranges(total=10, streams=2, block=3)
        assert lanes[0] == [(0, 3), (6, 3)]
        assert lanes[1] == [(3, 3), (9, 1)]

    def test_covers_everything_exactly_once(self):
        lanes = gridftp.stripe_ranges(total=1000, streams=3, block=64)
        seen = sorted(
            (off, length) for lane in lanes for off, length in lane
        )
        position = 0
        for off, length in seen:
            assert off == position
            position += length
        assert position == 1000

    def test_single_stream(self):
        lanes = gridftp.stripe_ranges(total=10, streams=1, block=4)
        assert lanes == [[(0, 4), (4, 4), (8, 2)]]

    def test_empty_total(self):
        assert gridftp.stripe_ranges(0, 2, 4) == [[], []]

    def test_invalid_parameters(self):
        with pytest.raises(ProtocolError):
            gridftp.stripe_ranges(10, 0, 4)
        with pytest.raises(ProtocolError):
            gridftp.stripe_ranges(10, 2, 0)


class TestOpts:
    def test_parse_parallelism(self):
        opts = gridftp.parse_opts_retr("RETR Parallelism=4;")
        assert opts["parallelism"] == 4

    def test_multiple_options(self):
        opts = gridftp.parse_opts_retr(
            "RETR Parallelism=4;StartingParallelism=2;"
        )
        assert opts == {"parallelism": 4, "startingparallelism": 2}

    def test_format_round_trip(self):
        arg = gridftp.format_opts_retr(8)
        assert gridftp.parse_opts_retr(arg)["parallelism"] == 8

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            gridftp.parse_opts_retr("STOR Parallelism=4;")
        with pytest.raises(ProtocolError):
            gridftp.parse_opts_retr("RETR Parallelism;")
        with pytest.raises(ProtocolError):
            gridftp.parse_opts_retr("RETR Parallelism=lots;")
