"""Unit tests for the FTP codec helpers."""

import pytest

from repro.protocols import ftp
from repro.protocols.common import ProtocolError, Response, Status


class TestCommands:
    def test_parse_with_argument(self):
        assert ftp.parse_command("RETR /file.txt") == ("RETR", "/file.txt")

    def test_parse_lower_cased_verb(self):
        assert ftp.parse_command("user anonymous") == ("USER", "anonymous")

    def test_parse_bare(self):
        assert ftp.parse_command("QUIT") == ("QUIT", "")

    def test_argument_with_spaces(self):
        assert ftp.parse_command("STOR a b c") == ("STOR", "a b c")

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            ftp.parse_command("")


class TestReplies:
    def test_format_and_parse(self):
        line = ftp.format_reply(ftp.READY, "Service ready")
        assert ftp.parse_reply(line) == (220, "Service ready")

    def test_parse_no_text(self):
        assert ftp.parse_reply("221") == (221, "")

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            ftp.parse_reply("hi there")
        with pytest.raises(ProtocolError):
            ftp.parse_reply("2x0 nope")


class TestPassiveMode:
    def test_pasv_round_trip(self):
        line = ftp.format_pasv_reply("127.0.0.1", 51234)
        code, text = ftp.parse_reply(line)
        assert code == ftp.PASSIVE
        host, port = ftp.parse_pasv_reply(text)
        assert (host, port) == ("127.0.0.1", 51234)

    def test_pasv_port_arithmetic(self):
        line = ftp.format_pasv_reply("10.0.0.5", 256 * 7 + 9)
        _, text = ftp.parse_reply(line)
        assert "(10,0,0,5,7,9)" in text

    def test_non_ipv4_host_falls_back_to_loopback(self):
        line = ftp.format_pasv_reply("localhost", 2000)
        _, text = ftp.parse_reply(line)
        host, port = ftp.parse_pasv_reply(text)
        assert host == "127.0.0.1" and port == 2000

    @pytest.mark.parametrize("bad", [
        "no parens", "(1,2,3)", "(a,b,c,d,e,f)",
    ])
    def test_malformed_pasv_rejected(self, bad):
        with pytest.raises(ProtocolError):
            ftp.parse_pasv_reply(bad)


class TestFailureMapping:
    def test_not_found_maps_to_550(self):
        line = ftp.failure_reply(Response(Status.NOT_FOUND, message="gone"))
        code, text = ftp.parse_reply(line)
        assert code == ftp.ACTION_FAILED and text == "gone"

    def test_no_space_maps_to_552(self):
        code, _ = ftp.parse_reply(ftp.failure_reply(Response(Status.NO_SPACE)))
        assert code == ftp.NO_SPACE

    def test_not_logged_in(self):
        code, _ = ftp.parse_reply(
            ftp.failure_reply(Response(Status.NOT_AUTHENTICATED))
        )
        assert code == ftp.NOT_LOGGED_IN
