"""Unit tests for the HTTP codec."""

import io

import pytest

from repro.protocols import http
from repro.protocols.common import (
    ProtocolError,
    Request,
    RequestType,
    Response,
    Status,
)


def parse(raw: bytes):
    return http.read_request(io.BytesIO(raw))


class TestRequestParsing:
    def test_get(self):
        req = parse(b"GET /f HTTP/1.0\r\nHost: x\r\n\r\n")
        assert req.rtype is RequestType.GET and req.path == "/f"

    def test_head_maps_to_stat(self):
        req = parse(b"HEAD /f HTTP/1.0\r\n\r\n")
        assert req.rtype is RequestType.STAT

    def test_put_requires_content_length(self):
        req = parse(b"PUT /f HTTP/1.0\r\nContent-Length: 99\r\n\r\n")
        assert req.rtype is RequestType.PUT and req.length == 99
        with pytest.raises(ProtocolError):
            parse(b"PUT /f HTTP/1.0\r\n\r\n")

    def test_delete(self):
        assert parse(b"DELETE /f HTTP/1.0\r\n\r\n").rtype is RequestType.DELETE

    def test_eof_returns_none(self):
        assert parse(b"") is None

    def test_keep_alive_flag(self):
        req = parse(b"GET /f HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert req.params["keep_alive"] is True
        req = parse(b"GET /f HTTP/1.0\r\n\r\n")
        assert req.params["keep_alive"] is False

    def test_headers_lower_cased(self):
        req = parse(b"GET /f HTTP/1.0\r\nX-Custom: Value\r\n\r\n")
        assert req.params["headers"]["x-custom"] == "Value"

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError):
            parse(b"GET /f\r\n\r\n")
        with pytest.raises(ProtocolError):
            parse(b"NONSENSE\r\n\r\n")

    def test_unsupported_method(self):
        with pytest.raises(ProtocolError):
            parse(b"PATCH /f HTTP/1.0\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(ProtocolError):
            parse(b"GET /f HTTP/1.0\r\nnocolon\r\n\r\n")


class TestClientSide:
    def test_write_request_round_trips(self):
        buf = io.BytesIO()
        http.write_request(buf, Request(rtype=RequestType.GET, path="/x"))
        buf.seek(0)
        req = http.read_request(buf)
        assert req.rtype is RequestType.GET and req.path == "/x"

    def test_write_put_round_trips(self):
        buf = io.BytesIO()
        http.write_request(buf, Request(rtype=RequestType.PUT, path="/x",
                                        length=7))
        buf.seek(0)
        req = http.read_request(buf)
        assert req.length == 7

    def test_unsupported_type_rejected(self):
        with pytest.raises(ProtocolError):
            http.write_request(io.BytesIO(),
                               Request(rtype=RequestType.LOT_CREATE))


class TestResponseCodec:
    def test_ok_head(self):
        buf = io.BytesIO()
        http.write_response_head(buf, Response(Status.OK), content_length=5)
        buf.seek(0)
        resp, headers = http.read_response_head(buf)
        assert resp.ok and headers["content-length"] == "5"

    @pytest.mark.parametrize("status,code", [
        (Status.NOT_FOUND, "404"),
        (Status.DENIED, "403"),
        (Status.NO_SPACE, "507"),
        (Status.SERVER_ERROR, "500"),
    ])
    def test_error_statuses(self, status, code):
        buf = io.BytesIO()
        http.write_response_head(buf, Response(status))
        buf.seek(0)
        assert buf.getvalue().split(b" ")[1] == code.encode()
        resp, _ = http.read_response_head(io.BytesIO(buf.getvalue()))
        assert resp.status is status

    def test_malformed_status_line(self):
        with pytest.raises(ProtocolError):
            http.read_response_head(io.BytesIO(b"garbage\r\n\r\n"))
