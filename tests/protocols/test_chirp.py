"""Unit tests for the Chirp codec."""

import pytest

from repro.protocols.chirp import (
    decode_request,
    decode_response,
    decode_stat,
    encode_request,
    encode_response,
    encode_stat,
)
from repro.protocols.common import (
    ProtocolError,
    Request,
    RequestType,
    Response,
    Status,
)


def round_trip(req: Request) -> Request:
    return decode_request(encode_request(req))


class TestRequestCodec:
    def test_get(self):
        out = round_trip(Request(rtype=RequestType.GET, path="/a/b"))
        assert out.rtype is RequestType.GET and out.path == "/a/b"

    def test_put_carries_length(self):
        out = round_trip(Request(rtype=RequestType.PUT, path="/f", length=123))
        assert out.length == 123

    def test_read_write_offsets(self):
        out = round_trip(Request(rtype=RequestType.READ, path="/f",
                                 offset=4096, length=8192))
        assert (out.offset, out.length) == (4096, 8192)

    def test_path_with_spaces_survives(self):
        out = round_trip(Request(rtype=RequestType.GET, path="/my file name"))
        assert out.path == "/my file name"

    def test_checksum(self):
        out = round_trip(Request(rtype=RequestType.CHECKSUM, path="/a/b"))
        assert out.rtype is RequestType.CHECKSUM and out.path == "/a/b"

    def test_checksum_wire_verb(self):
        assert encode_request(
            Request(rtype=RequestType.CHECKSUM, path="/f")
        ).startswith("checksum ")

    def test_lot_create(self):
        req = Request(rtype=RequestType.LOT_CREATE,
                      params={"capacity": 1000, "duration": 60.0})
        out = round_trip(req)
        assert out.params["capacity"] == 1000
        assert out.params["duration"] == 60.0

    def test_lot_renew(self):
        req = Request(rtype=RequestType.LOT_RENEW,
                      params={"lot_id": "lot7", "duration": 10.0})
        out = round_trip(req)
        assert out.params == {"lot_id": "lot7", "duration": 10.0}

    def test_acl_set(self):
        req = Request(rtype=RequestType.ACL_SET, path="/d",
                      params={"subject": "group:wind", "rights": "rwl"})
        out = round_trip(req)
        assert out.params["subject"] == "group:wind"
        assert out.params["rights"] == "rwl"

    def test_rename(self):
        req = Request(rtype=RequestType.RENAME, path="/a",
                      params={"new_path": "/b"})
        out = round_trip(req)
        assert out.params["new_path"] == "/b"

    def test_all_simple_verbs(self):
        for rtype in (RequestType.MKDIR, RequestType.RMDIR, RequestType.LIST,
                      RequestType.STAT, RequestType.DELETE,
                      RequestType.ACL_GET):
            out = round_trip(Request(rtype=rtype, path="/p"))
            assert out.rtype is rtype and out.path == "/p"

    def test_bare_verbs(self):
        for rtype in (RequestType.QUERY, RequestType.QUIT,
                      RequestType.LOT_LIST):
            assert round_trip(Request(rtype=rtype)).rtype is rtype

    def test_unknown_verb_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request("frobnicate /x")

    def test_malformed_arguments_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request("put /f notanumber")
        with pytest.raises(ProtocolError):
            decode_request("read /f")


class TestResponseCodec:
    def test_ok_with_args(self):
        line = encode_response(Response(Status.OK), ["123", "file"])
        resp, args = decode_response(line)
        assert resp.ok and args == ["123", "file"]

    def test_ok_bare(self):
        resp, args = decode_response(encode_response(Response(Status.OK)))
        assert resp.ok and args == []

    def test_error_with_message(self):
        line = encode_response(
            Response(Status.NOT_FOUND, message="/gone missing")
        )
        resp, _ = decode_response(line)
        assert resp.status is Status.NOT_FOUND
        assert resp.message == "/gone missing"

    def test_every_status_round_trips(self):
        for status in Status:
            if status is Status.OK:
                continue
            resp, _ = decode_response(encode_response(Response(status)))
            assert resp.status is status

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            decode_response("banana")
        with pytest.raises(ProtocolError):
            decode_response("err")


class TestStatCodec:
    def test_round_trip(self):
        stat = {"size": 42, "type": "file", "owner": "alice"}
        assert decode_stat(encode_stat(stat)) == stat

    def test_short_reply_rejected(self):
        with pytest.raises(ProtocolError):
            decode_stat(["1"])
