"""Unit tests for the NFS wire pieces: XDR, RPC envelope, record marking."""

import io

import pytest

from repro.protocols import nfs
from repro.protocols.common import ProtocolError
from repro.protocols.xdr import Packer, Unpacker


class TestXdr:
    def test_uint_round_trip(self):
        p = Packer()
        p.pack_uint(0)
        p.pack_uint(2**32 - 1)
        u = Unpacker(p.get_buffer())
        assert u.unpack_uint() == 0
        assert u.unpack_uint() == 2**32 - 1
        u.done()

    def test_int_negative(self):
        p = Packer()
        p.pack_int(-42)
        assert Unpacker(p.get_buffer()).unpack_int() == -42

    def test_hyper(self):
        p = Packer()
        p.pack_hyper(2**63 + 1)
        assert Unpacker(p.get_buffer()).unpack_hyper() == 2**63 + 1

    def test_bool(self):
        p = Packer()
        p.pack_bool(True)
        p.pack_bool(False)
        u = Unpacker(p.get_buffer())
        assert u.unpack_bool() is True
        assert u.unpack_bool() is False

    def test_opaque_padding(self):
        p = Packer()
        p.pack_opaque(b"abc")  # 3 bytes -> 1 pad byte
        buf = p.get_buffer()
        assert len(buf) == 4 + 4
        assert Unpacker(buf).unpack_opaque() == b"abc"

    def test_string_unicode(self):
        p = Packer()
        p.pack_string("héllo/wörld")
        assert Unpacker(p.get_buffer()).unpack_string() == "héllo/wörld"

    def test_mixed_sequence(self):
        p = Packer()
        p.pack_uint(7)
        p.pack_string("name")
        p.pack_hyper(1 << 40)
        u = Unpacker(p.get_buffer())
        assert (u.unpack_uint(), u.unpack_string(), u.unpack_hyper()) == (
            7, "name", 1 << 40
        )
        u.done()

    def test_underflow_rejected(self):
        with pytest.raises(ProtocolError):
            Unpacker(b"\x00\x00").unpack_uint()

    def test_trailing_bytes_detected(self):
        u = Unpacker(b"\x00" * 8)
        u.unpack_uint()
        assert u.remaining == 4
        with pytest.raises(ProtocolError):
            u.done()


class TestRecordMarking:
    def test_round_trip(self):
        buf = io.BytesIO()
        nfs.write_record(buf, b"payload")
        buf.seek(0)
        assert nfs.read_record(buf) == b"payload"

    def test_multiple_records(self):
        buf = io.BytesIO()
        nfs.write_record(buf, b"one")
        nfs.write_record(buf, b"two")
        buf.seek(0)
        assert nfs.read_record(buf) == b"one"
        assert nfs.read_record(buf) == b"two"

    def test_multi_fragment_record(self):
        import struct
        buf = io.BytesIO()
        buf.write(struct.pack(">I", 3))          # fragment, not last
        buf.write(b"abc")
        buf.write(struct.pack(">I", 0x80000000 | 3))  # last fragment
        buf.write(b"def")
        buf.seek(0)
        assert nfs.read_record(buf) == b"abcdef"

    def test_eof_mid_record_rejected(self):
        buf = io.BytesIO()
        nfs.write_record(buf, b"full")
        truncated = io.BytesIO(buf.getvalue()[:-2])
        with pytest.raises(ProtocolError):
            nfs.read_record(truncated)


class TestRpcEnvelope:
    def test_call_round_trip(self):
        args = Packer()
        args.pack_string("/export")
        record = nfs.pack_call(xid=7, prog=nfs.PROG_MOUNT,
                               proc=nfs.MOUNTPROC_MNT,
                               args=args.get_buffer())
        xid, prog, proc, u = nfs.unpack_call(record)
        assert (xid, prog, proc) == (7, nfs.PROG_MOUNT, nfs.MOUNTPROC_MNT)
        assert u.unpack_string() == "/export"

    def test_reply_round_trip(self):
        results = Packer()
        results.pack_uint(nfs.NFS_OK)
        record = nfs.pack_reply(xid=9, results=results.get_buffer())
        xid, u = nfs.unpack_reply(record)
        assert xid == 9
        assert u.unpack_uint() == nfs.NFS_OK

    def test_reply_is_not_a_call(self):
        record = nfs.pack_reply(1, b"")
        with pytest.raises(ProtocolError):
            nfs.unpack_call(record)

    def test_call_is_not_a_reply(self):
        record = nfs.pack_call(1, nfs.PROG_NFS, nfs.PROC_NULL, b"")
        with pytest.raises(ProtocolError):
            nfs.unpack_reply(record)


class TestFileHandles:
    def test_round_trip(self):
        handle = nfs.make_fhandle(123456)
        assert len(handle) == nfs.FHSIZE
        assert nfs.fhandle_token(handle) == 123456

    def test_wrong_length_rejected(self):
        with pytest.raises(ProtocolError):
            nfs.fhandle_token(b"short")


class TestFattr:
    def test_round_trip(self):
        p = Packer()
        nfs.pack_fattr(p, nfs.NFREG, 4096)
        u = Unpacker(p.get_buffer())
        attrs = nfs.unpack_fattr(u)
        assert attrs["type"] == nfs.NFREG
        assert attrs["size"] == 4096

    def test_directory_mode(self):
        p = Packer()
        nfs.pack_fattr(p, nfs.NFDIR, 0)
        attrs = nfs.unpack_fattr(Unpacker(p.get_buffer()))
        assert attrs["mode"] == 0o755
