"""Unit tests for the IBP wire dialect."""

import pytest

from repro.protocols.common import ProtocolError
from repro.protocols.ibp import (
    IbpError,
    make_capability,
    parse_capability,
    parse_command,
    parse_reply,
    format_err,
    format_ok,
)


class TestCapabilities:
    def test_round_trip(self):
        text = make_capability("depot.example.org", "a17", "deadbeef", "read")
        cap = parse_capability(text)
        assert cap.host == "depot.example.org"
        assert cap.alloc_id == "a17"
        assert cap.secret == "deadbeef"
        assert cap.kind == "read"
        assert cap.render() == text

    @pytest.mark.parametrize("kind", ["read", "write", "manage"])
    def test_all_kinds(self, kind):
        assert parse_capability(
            make_capability("h", "a1", "ab12", kind)
        ).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            make_capability("h", "a1", "ab", "root")

    @pytest.mark.parametrize("bad", [
        "http://h/a1#ab/read",
        "ibp://h/a1/read",
        "ibp://h/a1#xyz!/read",
        "ibp://h/a1#ab/execute",
        "",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ProtocolError):
            parse_capability(bad)


class TestWireFormat:
    def test_command_parsing(self):
        verb, args = parse_command("allocate 1000 60 stable")
        assert verb == "allocate" and args == ["1000", "60", "stable"]

    def test_command_case_folded(self):
        verb, _ = parse_command("STATUS")
        assert verb == "status"

    def test_empty_command_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command("   ")

    def test_ok_round_trip(self):
        assert parse_reply(format_ok(1, "two", 3.0)) == ["1", "two", "3.0"]
        assert parse_reply(format_ok()) == []

    def test_err_raises(self):
        with pytest.raises(IbpError) as info:
            parse_reply(format_err("no-space", "depot full"))
        assert info.value.code == "no-space"

    def test_garbage_reply_rejected(self):
        with pytest.raises(ProtocolError):
            parse_reply("banana split")
