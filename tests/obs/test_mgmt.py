"""The management endpoint under load, faults, and shutdown.

The scrape surface must stay consistent while the data path is busy:
concurrent scrapes during 32 in-flight transfers with an active fault
plan, and a scrape racing a graceful ``stop(drain_timeout=...)`` --
and the endpoint must never leak a thread.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.client import ChirpClient
from repro.faults import FaultPlan
from repro.nest.config import NestConfig
from repro.nest.server import NestServer
from repro.obs.export_chrome import validate_trace
from repro.obs.health import HealthMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.mgmt import ManagementEndpoint
from repro.obs.spans import SpanRecorder


def scrape(port: int, path: str = "/metrics",
           host: str = "127.0.0.1") -> tuple[str, bytes]:
    """One raw HTTP/1.0 GET; returns (status line, body)."""
    with socket.create_connection((host, port), timeout=5.0) as conn:
        conn.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        chunks = []
        while True:
            data = conn.recv(65536)
            if not data:
                break
            chunks.append(data)
    head, _, body = b"".join(chunks).partition(b"\r\n\r\n")
    return head.split(b"\r\n", 1)[0].decode("latin-1"), body


def mgmt_threads() -> list[threading.Thread]:
    return [t for t in threading.enumerate()
            if t.name.startswith("obs-mgmt")]


class TestEndpointUnit:
    @pytest.fixture
    def endpoint(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "demo").inc(3)
        ep = ManagementEndpoint(
            registry, health=HealthMonitor(registry),
            recorder=SpanRecorder(), service="unit",
            ad_attributes=lambda: {"ThroughputMBps": 1.5},
        ).start()
        yield ep
        ep.stop()

    def test_metrics_document(self, endpoint):
        status, body = scrape(endpoint.port, "/metrics")
        assert " 200 " in f" {status} "
        assert b"demo_total 3" in body

    def test_healthz_document(self, endpoint):
        _status, body = scrape(endpoint.port, "/healthz")
        doc = json.loads(body)
        assert set(doc) == {"throughput_bps", "requests", "errors",
                            "error_rates", "probes"}

    def test_trace_document_validates(self, endpoint):
        _status, body = scrape(endpoint.port, "/trace")
        assert validate_trace(json.loads(body)) == []

    def test_ad_document(self, endpoint):
        _status, body = scrape(endpoint.port, "/ad")
        assert json.loads(body) == {"ThroughputMBps": 1.5}

    def test_unknown_path_is_404(self, endpoint):
        status, _body = scrape(endpoint.port, "/nope")
        assert "404" in status

    def test_stop_joins_every_scrape_thread(self, endpoint):
        for _ in range(5):
            scrape(endpoint.port, "/metrics")
        endpoint.stop()
        assert endpoint.active_scrapes() == 0
        assert not [t for t in mgmt_threads() if t.is_alive()]


class TestScrapesUnderLoad:
    N_TRANSFERS = 32

    def test_concurrent_scrapes_with_inflight_transfers_and_faults(self):
        # Stall a handful of connections so transfers genuinely overlap,
        # and keep the fault plan active while scraping.
        plan = FaultPlan.stall(0.3, op="read",
                               connections=range(1, 5), times=4)
        config = NestConfig(name="load-nest", protocols=("chirp",),
                            transfer_workers=4)
        server = NestServer(config, faults=plan)
        server.start()
        try:
            server.storage.mkdir("admin", "/data")
            server.storage.acl_set("admin", "/data", "*", "rliwd")
            payload = b"m" * 65536
            errors: list[Exception] = []

            def put(i: int) -> None:
                try:
                    with ChirpClient(*server.endpoint("chirp")) as c:
                        c.put(f"/data/f{i}.bin", payload)
                except Exception as exc:  # faulted connection: fine
                    errors.append(exc)

            workers = [threading.Thread(target=put, args=(i,))
                       for i in range(self.N_TRANSFERS)]
            for w in workers:
                w.start()

            scrape_errors: list[Exception] = []
            bodies: list[bytes] = []

            def scraper() -> None:
                try:
                    for path in ("/metrics", "/healthz", "/trace", "/ad"):
                        status, body = scrape(server.ports["mgmt"], path)
                        assert " 200 " in f" {status} "
                        bodies.append(body)
                except Exception as exc:
                    scrape_errors.append(exc)

            scrapers = [threading.Thread(target=scraper) for _ in range(4)]
            for s in scrapers:
                s.start()
            for s in scrapers:
                s.join(timeout=10)
            for w in workers:
                w.join(timeout=10)

            assert not scrape_errors
            assert len(bodies) == 16
            # Each scrape was a consistent snapshot: metrics parse as
            # exposition text, JSON documents parse as JSON.
            status, body = scrape(server.ports["mgmt"], "/metrics")
            assert b"nest_transfer_bytes_total" in body
            health = json.loads(scrape(server.ports["mgmt"],
                                       "/healthz")[1])
            assert health["requests"].get("chirp", 0) > 0
        finally:
            server.stop()
        assert not [t for t in mgmt_threads() if t.is_alive()]

    def test_scrape_during_graceful_stop(self):
        # A transfer stalled mid-flight keeps the drain window open;
        # the endpoint must keep answering while the server drains.
        # The rule targets the get's data stream (connection 2, after
        # 64 KiB served) so the earlier put is untouched.
        from repro.faults import FaultAction, FaultRule

        plan = FaultPlan([FaultRule(op="write", action=FaultAction.STALL,
                                    connections=frozenset({2}),
                                    after_bytes=65536, stall_seconds=1.0,
                                    times=1)])
        config = NestConfig(name="drain-nest", protocols=("chirp",))
        server = NestServer(config, faults=plan)
        server.start()
        server.storage.mkdir("admin", "/data")
        server.storage.acl_set("admin", "/data", "*", "rliwd")
        payload = b"d" * 262144
        with ChirpClient(*server.endpoint("chirp")) as c:
            c.put("/data/drain.bin", payload)

        def slow_get() -> None:
            try:
                with ChirpClient(*server.endpoint("chirp")) as c:
                    c.get("/data/drain.bin")
            except Exception:
                pass  # the drain may cut the stalled connection

        mgmt_port = server.ports["mgmt"]
        getter = threading.Thread(target=slow_get)
        getter.start()
        time.sleep(0.2)  # let the get reach the stalled write

        result: dict = {}

        def stopper() -> None:
            result.update(server.stop(drain_timeout=5.0))

        stop_thread = threading.Thread(target=stopper)
        stop_thread.start()
        time.sleep(0.1)  # inside the drain window (write stalls 1s)
        status, body = scrape(mgmt_port, "/metrics")
        assert " 200 " in f" {status} "
        assert b"nest_transfer_bytes_total" in body

        stop_thread.join(timeout=10)
        getter.join(timeout=10)
        assert result  # stop() completed and reported its drain
        assert server.mgmt is None
        assert not [t for t in mgmt_threads() if t.is_alive()]
