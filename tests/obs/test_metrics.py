"""Units for the thread-safe metrics registry."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)


class TestCounter:
    def test_inc_value_total(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs", "requests", labelnames=("proto",))
        c.inc(proto="chirp")
        c.inc(2, proto="http")
        assert c.value(proto="chirp") == 1
        assert c.value(proto="http") == 2
        assert c.total() == 3

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_missing_label_rejected(self):
        c = MetricsRegistry().counter("c", labelnames=("proto",))
        with pytest.raises(ValueError):
            c.inc()

    def test_unexpected_label_rejected(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            c.inc(proto="chirp")

    def test_concurrent_increments_are_not_lost(self):
        c = MetricsRegistry().counter("c")

        def spin():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestBoundedSeries:
    def test_overflow_collapses_instead_of_growing(self):
        c = MetricsRegistry().counter("c", labelnames=("op",), max_series=4)
        for i in range(10):
            c.inc(op=f"verb-{i}")
        series = c.series()
        assert len(series) == 5  # 4 real + the overflow bucket
        assert series[("overflow",)] == 6
        assert c.dropped_series == 6
        assert c.total() == 10  # nothing lost, just collapsed

    def test_existing_series_still_updates_past_the_cap(self):
        c = MetricsRegistry().counter("c", labelnames=("op",), max_series=2)
        c.inc(op="get")
        c.inc(op="put")
        c.inc(op="stat")  # overflow
        c.inc(op="get")  # established series keeps its own cell
        assert c.value(op="get") == 2


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6

    def test_callback_gauge_probes_at_read_time(self):
        box = {"depth": 3}
        reg = MetricsRegistry()
        g = reg.gauge_callback("queue", lambda: box["depth"])
        assert g.value() == 3
        box["depth"] = 7
        assert g.value() == 7

    def test_broken_callback_reads_as_zero(self):
        g = MetricsRegistry().gauge_callback(
            "q", lambda: 1 / 0)  # pragma: no branch
        assert g.value() == 0.0


class TestHistogram:
    def test_observe_count_sum(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.002)
        h.observe(0.2)
        assert h.count() == 2
        assert h.sum() == pytest.approx(0.202)

    def test_bucket_counts_are_cumulative_in_snapshot(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)  # lands in +Inf
        series = h.series()[()]
        assert series["buckets"] == [1, 2, 3]
        assert series["count"] == 3

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("c", "help", labelnames=("op",)).inc(op="get")
        snap = reg.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["series"] == {"get": 1}

    def test_reset_global_registry_isolates(self):
        first = reset_global_registry()
        first.counter("stale").inc()
        second = reset_global_registry()
        assert second is global_registry()
        assert second.get("stale") is None
