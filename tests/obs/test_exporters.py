"""Exporter units: Prometheus text exposition and Chrome trace JSON."""

from __future__ import annotations

import json

import pytest

from repro.obs.export_chrome import (
    sim_trace_to_chrome,
    spans_to_chrome,
    validate_trace,
    write_trace,
)
from repro.obs.export_prom import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder, Tracer


class TestPrometheus:
    def test_counter_exposition(self):
        reg = MetricsRegistry()
        reg.counter("nest_requests_total", "Requests served.",
                    labelnames=("protocol", "op")).inc(
            12, protocol="chirp", op="get")
        text = render_prometheus(reg)
        assert "# HELP nest_requests_total Requests served.\n" in text
        assert "# TYPE nest_requests_total counter\n" in text
        assert 'nest_requests_total{protocol="chirp",op="get"} 12\n' in text

    def test_histogram_emits_cumulative_buckets_sum_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = render_prometheus(reg)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 0.55" in text
        assert "lat_count 2" in text

    def test_callback_gauge_probed_at_render_time(self):
        reg = MetricsRegistry()
        box = {"v": 4}
        reg.gauge_callback("depth", lambda: box["v"])
        assert "depth 4" in render_prometheus(reg)
        box["v"] = 9
        assert "depth 9" in render_prometheus(reg)

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", labelnames=("op",)).inc(op='we"ird\nname')
        text = render_prometheus(reg)
        assert 'op="we\\"ird\\nname"' in text

    def test_bare_counter_renders_zero(self):
        reg = MetricsRegistry()
        reg.counter("untouched")
        assert "untouched 0\n" in render_prometheus(reg)


class TestChromeExport:
    def _recorder_with_tree(self):
        recorder = SpanRecorder()
        tracer = Tracer(recorder, service="nest")
        root = tracer.start_trace("accept", protocol="chirp")
        with root:
            with root.child("request", op="get"):
                pass
        root.end()
        return recorder

    def test_span_tree_exports_and_validates(self):
        doc = spans_to_chrome(self._recorder_with_tree(), service="nest")
        assert validate_trace(doc) == []
        events = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert set(events) == {"accept", "request"}
        assert events["request"]["args"]["parent_id"] == \
            events["accept"]["args"]["span_id"]
        assert events["request"]["tid"] == events["accept"]["tid"]

    def test_metadata_names_the_service(self):
        doc = spans_to_chrome(self._recorder_with_tree(), service="appliance")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["args"]["name"] == "appliance" for e in meta)

    def test_unfinished_spans_are_skipped(self):
        recorder = SpanRecorder()
        tracer = Tracer(recorder)
        tracer.start_trace("open-forever").child("done").end()
        doc = spans_to_chrome(recorder)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert names == ["done"]

    def test_document_is_json_serializable(self):
        doc = spans_to_chrome(self._recorder_with_tree())
        json.dumps(doc)  # must not raise


class TestValidateTrace:
    def test_rejects_non_object(self):
        assert validate_trace([]) == ["document must be a JSON object"]

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"name": "x", "ph": "B", "pid": 1, "tid": 1}]}
        assert any("unknown phase" in p for p in validate_trace(doc))

    def test_rejects_negative_timestamps(self):
        doc = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 1,
                                "ts": -5, "dur": 1}]}
        assert any("bad ts" in p for p in validate_trace(doc))

    def test_write_trace_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace(str(tmp_path / "bad.json"), {"traceEvents": 3})

    def test_write_trace_round_trips(self, tmp_path):
        recorder = SpanRecorder()
        Tracer(recorder).start_trace("a").end()
        doc = spans_to_chrome(recorder)
        path = tmp_path / "trace.json"
        write_trace(str(path), doc)
        assert json.loads(path.read_text()) == doc


class TestSimTrace:
    def test_kernel_trace_exports_and_validates(self):
        from repro.sim import Environment

        env = Environment()
        trace = env.enable_trace()

        def worker(env):
            yield env.timeout(1.0)
            yield env.timeout(2.0)

        env.process(worker(env))
        env.run()
        doc = sim_trace_to_chrome(trace)
        assert validate_trace(doc) == []
        kinds = {e["cat"] for e in doc["traceEvents"] if "cat" in e}
        assert "process" in kinds  # the worker's lifetime row
        assert "event" in kinds  # dispatch instants
