"""End-to-end tracing: one Chirp request, the whole span tree.

The acceptance path of the telemetry layer: a live request must leave
an accept -> auth -> request -> queue/transfer -> storage span tree
with measured durations, visible in the Prometheus exposition *and*
exportable as a valid Chrome trace document.
"""

from __future__ import annotations

import time

import pytest

from repro.client import ChirpClient
from repro.nest.auth import CertificateAuthority
from repro.nest.config import NestConfig
from repro.nest.server import NestServer
from repro.obs.export_chrome import spans_to_chrome, validate_trace

PAYLOAD = b"traced" * 4096  # 24 KiB: enough to cross the transfer path


@pytest.fixture
def server():
    ca = CertificateAuthority("Trace Test CA")
    srv = NestServer(NestConfig(name="trace-nest"), ca=ca)
    srv.start()
    srv.storage.mkdir("admin", "/data")
    srv.storage.acl_set("admin", "/data", "*", "rliwd")
    yield srv
    srv.stop()


def _run_traced_request(server):
    """One authenticated Chirp put + get, waited until the connection
    span closes, returning every span of that connection's trace."""
    with ChirpClient(*server.endpoint("chirp")) as client:
        client.authenticate(server.ca.issue("/CN=tracer"))
        client.put("/data/traced.bin", PAYLOAD)
        assert client.get("/data/traced.bin") == PAYLOAD
    deadline = time.monotonic() + 5.0
    recorder = server.obs.recorder
    while time.monotonic() < deadline:
        roots = [s for s in recorder.spans() if s.name == "accept"]
        if roots:
            return recorder.trace(roots[0].trace_id)
        time.sleep(0.01)
    raise AssertionError("connection span never closed")


class TestSpanTree:
    def test_request_yields_the_full_tree(self, server):
        spans = _run_traced_request(server)
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        # One connection root, carrying the authenticated user.
        (root,) = by_name["accept"]
        assert root.attributes["protocol"] == "chirp"
        assert root.attributes["user"] == "/CN=tracer"
        # Timed layers: parse, auth, per-request, queue-wait, transfer,
        # storage -- all in the same trace, all with durations.
        for name in ("parse", "auth", "request", "queue", "transfer",
                     "storage"):
            assert name in by_name, f"no {name!r} span recorded"
        for span in spans:
            assert span.ended
            assert span.duration >= 0.0
            assert span.trace_id == root.trace_id

    def test_requests_hang_off_the_connection_root(self, server):
        spans = _run_traced_request(server)
        (root,) = [s for s in spans if s.name == "accept"]
        requests = [s for s in spans if s.name == "request"]
        ops = {s.attributes["op"] for s in requests}
        assert {"put", "get"} <= ops
        for request in requests:
            assert request.parent_id == root.span_id
            assert request.status == "ok"

    def test_queue_wait_and_transfer_have_measured_durations(self, server):
        spans = _run_traced_request(server)
        queues = [s for s in spans if s.name == "queue"]
        transfers = [s for s in spans if s.name == "transfer"]
        assert queues and transfers
        for span in queues + transfers:
            assert span.duration is not None
            assert span.duration >= 0.0
            assert span.parent_id is not None

    def test_storage_spans_carry_the_operation(self, server):
        spans = _run_traced_request(server)
        ops = {s.attributes.get("op") for s in spans if s.name == "storage"}
        assert ops  # approve/execute commits were traced


class TestExportSurfaces:
    def test_request_lands_in_prometheus_exposition(self, server):
        _run_traced_request(server)
        text = server.obs.render_prometheus()
        assert 'nest_connections_total{protocol="chirp"} 1' in text
        assert 'protocol="chirp",op="put",outcome="ok"' in text
        assert 'protocol="chirp",op="get",outcome="ok"' in text
        assert "nest_request_seconds_bucket" in text
        assert "nest_queue_wait_seconds_bucket" in text
        assert f'nest_transfer_bytes_total{{protocol="chirp"}} '\
               f"{len(PAYLOAD) * 2}" in text

    def test_trace_exports_as_valid_chrome_json(self, server):
        _run_traced_request(server)
        doc = spans_to_chrome(server.obs.recorder, service="trace-nest")
        assert validate_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"accept", "request", "queue", "transfer",
                "storage"} <= names

    def test_error_requests_count_as_errors(self, server):
        from repro.client.chirp import ChirpError

        with ChirpClient(*server.endpoint("chirp")) as client:
            with pytest.raises(ChirpError):
                client.get("/data/never-created")
        text = server.obs.render_prometheus()
        assert 'op="get",outcome="error"' in text
