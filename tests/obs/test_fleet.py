"""Fleet merging: per-shard snapshots and spans into one operator view.

Real registries and real tracers on both "shards" (no pickled pipes
here -- the live control plane has its own test), so the merge rules
are exercised against exactly the snapshot shapes workers ship:
counters sum, gauges keep a per-shard series, histograms bucket-merge,
and the stitched Chrome document keeps one process row per worker
while rejecting duplicate span events.
"""

from __future__ import annotations

from repro.obs.export_chrome import (
    merge_chrome_traces,
    spans_to_chrome,
    validate_trace,
)
from repro.obs.fleet import (
    merge_fleet_trace,
    merge_snapshots,
    render_fleet_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder, Tracer


def _shard_registry(requests, active):
    reg = MetricsRegistry()
    counter = reg.counter("nest_requests_total", "Requests.",
                          labelnames=("protocol", "op", "outcome"))
    counter.inc(requests, protocol="chirp", op="get", outcome="ok")
    reg.gauge("nest_active_connections", "Live.").set(active)
    hist = reg.histogram("nest_request_seconds", "Latency.",
                         labelnames=("protocol",))
    for _ in range(requests):
        hist.observe(0.01, protocol="chirp")
    return reg


class TestMergeSnapshots:
    def test_counters_sum_gauges_label_histograms_merge(self):
        snaps = {"0": _shard_registry(3, 1).snapshot(),
                 "1": _shard_registry(5, 7).snapshot()}
        fleet = merge_snapshots(snaps)
        assert fleet["nest_requests_total"]["series"]["chirp,get,ok"] == 8
        gauges = fleet["nest_active_connections"]["series"]
        assert gauges[("", "0")] == 1
        assert gauges[("", "1")] == 7
        hist = fleet["nest_request_seconds"]["series"]["chirp"]
        assert hist["count"] == 8
        assert hist["buckets"][-1] == 8  # +Inf cumulative

    def test_incompatible_shapes_are_skipped_not_corrupted(self):
        good = _shard_registry(2, 0).snapshot()
        bad = {"nest_requests_total": {"kind": "gauge", "labels": (),
                                       "series": {"": 99.0}}}
        fleet = merge_snapshots({"0": good, "1": bad})
        assert fleet["nest_requests_total"]["kind"] == "counter"
        assert fleet["nest_requests_total"]["series"]["chirp,get,ok"] == 2

    def test_render_exposition_has_shard_labels_and_sums(self):
        text = render_fleet_prometheus(
            {"0": _shard_registry(3, 1).snapshot(),
             "1": _shard_registry(5, 7).snapshot()})
        assert 'nest_active_connections{shard="0"} 1' in text
        assert 'nest_active_connections{shard="1"} 7' in text
        assert 'nest_requests_total{protocol="chirp",op="get",' \
               'outcome="ok"} 8' in text
        assert 'le="+Inf"' in text


def _worker_spans(service, n=2):
    recorder = SpanRecorder()
    tracer = Tracer(recorder=recorder, service=service)
    for i in range(n):
        root = tracer.start_trace("request", op=f"get-{i}")
        root.end()
    return [s.to_dict() for s in recorder.spans()]


class TestMergeTraces:
    def test_one_process_row_per_worker(self):
        doc = merge_fleet_trace({
            "0": ("nest-shard0", 101, _worker_spans("nest-shard0")),
            "1": ("nest-shard1", 202, _worker_spans("nest-shard1")),
        })
        assert validate_trace(doc) == []
        names = {(e["pid"], e["args"]["name"])
                 for e in doc["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "process_name"}
        assert names == {(101, "nest-shard0"), (202, "nest-shard1")}
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert pids == {101, 202}

    def test_duplicate_shipments_are_deduplicated(self):
        spans = _worker_spans("nest-shard0")
        doc = merge_fleet_trace({"0": ("nest-shard0", 101, spans + spans)})
        assert validate_trace(doc) == []
        assert len([e for e in doc["traceEvents"]
                    if e["ph"] == "X"]) == len(spans)

    def test_merge_filters_to_one_trace_id(self):
        recorder = SpanRecorder()
        tracer = Tracer(recorder=recorder, service="svc")
        keep = tracer.start_trace("request")
        keep.end()
        drop = tracer.start_trace("request")
        drop.end()
        doc = spans_to_chrome(recorder.spans(), service="svc", pid=9)
        merged = merge_chrome_traces([doc], trace_id=keep.trace_id)
        xs = [e for e in merged["traceEvents"] if e["ph"] == "X"]
        assert {e["args"]["trace_id"] for e in xs} == {keep.trace_id}
        # metadata rows survive the filter
        assert any(e["ph"] == "M" for e in merged["traceEvents"])

    def test_validate_rejects_colliding_events(self):
        ev = {"name": "request", "cat": "span", "ph": "X", "ts": 1.0,
              "dur": 2.0, "pid": 1, "tid": 1, "args": {}}
        problems = validate_trace({"traceEvents": [ev, dict(ev)]})
        assert any("duplicate event" in p for p in problems)
