"""Distributed trace propagation: the context crosses the wire.

The tentpole contract of the fleet-telemetry layer: a client running
inside a span sends its trace context with every request -- Chirp as a
tagged trailing ``tc=`` argument, HTTP as the ``X-Repro-Trace`` header
-- and the serving appliance adopts it, so the server-side request
span carries the *caller's* trace id with the caller's span as parent.
Untraced clients and malformed tokens must degrade to exactly the
pre-PR behaviour (fresh server-local trace), never to an error.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.client import ChirpClient
from repro.client.http import HttpClient
from repro.client.retry import RetryPolicy
from repro.faults import FaultPlan
from repro.nest.config import NestConfig
from repro.nest.server import NestServer
from repro.obs.spans import (
    SpanRecorder,
    Tracer,
    format_trace_context,
    parse_trace_context,
)
from repro.protocols import chirp, http
from repro.protocols.common import Request, RequestType


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------
class TestWireFormat:
    def test_round_trip(self):
        span = Tracer(service="wiretest").start_trace("op")
        token = format_trace_context(span)
        assert parse_trace_context(token) == (span.trace_id, span.span_id)

    @pytest.mark.parametrize("bad", [
        None, 7, "", "no-colon", ":leading", "trail:", "sp ace:abc",
        "ok:bad!chars", "x" * 200 + ":abc", "t:" + "f" * 33,
    ])
    def test_malformed_tokens_degrade_to_none(self, bad):
        assert parse_trace_context(bad) is None

    def test_chirp_carries_tagged_trailing_argument(self):
        req = Request(rtype=RequestType.GET, path="/a b/c",
                      params={"trace": "nest-000001:0000002a"})
        wire = chirp.encode_request(req)
        assert "tc=nest-000001:0000002a" in wire
        parsed = chirp.decode_request(wire)
        assert parsed.params["trace"] == "nest-000001:0000002a"
        assert parsed.path == "/a b/c"

    def test_chirp_untraced_request_has_no_token(self):
        wire = chirp.encode_request(Request(rtype=RequestType.GET,
                                            path="/x"))
        assert "tc=" not in wire
        assert chirp.decode_request(wire).params.get("trace") is None

    def test_chirp_lot_create_owner_stays_unambiguous(self):
        # An optional trailing positional (lot_create's owner) must
        # survive next to the trace token: the tag disambiguates.
        req = Request(rtype=RequestType.LOT_CREATE, length=4096,
                      params={"duration": 60.0, "owner": "alice",
                              "trace": "t-1:abc"})
        parsed = chirp.decode_request(chirp.encode_request(req))
        assert parsed.params["owner"] == "alice"
        assert parsed.params["trace"] == "t-1:abc"

    def test_http_header_round_trip(self):
        req = Request(rtype=RequestType.GET, path="/f",
                      params={"trace": "svc-000002:deadbeef"})
        buf = io.BytesIO()
        http.write_request(buf, req)
        buf.seek(0)
        parsed = http.read_request(buf)
        headers = parsed.params["headers"]
        assert headers[http.TRACE_HEADER.lower()] == "svc-000002:deadbeef"


# ---------------------------------------------------------------------------
# live adoption
# ---------------------------------------------------------------------------
@pytest.fixture
def server():
    srv = NestServer(NestConfig(name="prop-nest",
                                protocols=("chirp", "http")))
    srv.start()
    srv.storage.mkdir("admin", "/data")
    srv.storage.acl_set("admin", "/data", "*", "rliwd")
    with ChirpClient(*srv.endpoint("chirp")) as seed:
        seed.put("/data/f.bin", b"payload" * 512)
    yield srv
    srv.stop()


def _server_request_spans(server, trace_id, timeout=5.0):
    """Request spans the server recorded under the client's trace."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = [s for s in server.obs.recorder.spans()
                 if s.name == "request" and s.trace_id == trace_id]
        if spans:
            return spans
        time.sleep(0.01)
    return []


class TestLiveAdoption:
    def test_chirp_request_joins_the_client_trace(self, server):
        recorder = SpanRecorder()
        root = Tracer(recorder=recorder, service="cli").start_trace("job")
        with root:
            with ChirpClient(*server.endpoint("chirp")) as client:
                assert client.get("/data/f.bin") == b"payload" * 512
        spans = _server_request_spans(server, root.trace_id)
        assert spans, "server never adopted the client's trace"
        request = spans[-1]
        # The parent is the client-side attempt span of the same trace.
        attempts = [s for s in recorder.spans() if s.name == "attempt"]
        assert request.parent_id in {s.span_id for s in attempts}
        assert request.attributes["conn_trace"] != root.trace_id

    def test_http_request_joins_the_client_trace(self, server):
        recorder = SpanRecorder()
        root = Tracer(recorder=recorder, service="cli").start_trace("job")
        with root:
            with HttpClient(*server.endpoint("http")) as client:
                assert client.get("/data/f.bin") == b"payload" * 512
        spans = _server_request_spans(server, root.trace_id)
        assert spans, "server never adopted the client's trace"
        attempts = [s for s in recorder.spans() if s.name == "attempt"]
        assert spans[-1].parent_id in {s.span_id for s in attempts}

    def test_untraced_client_gets_a_server_local_trace(self, server):
        with ChirpClient(*server.endpoint("chirp")) as client:
            assert client.get("/data/f.bin") == b"payload" * 512
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            spans = [s for s in server.obs.recorder.spans()
                     if s.name == "request"]
            if spans:
                break
            time.sleep(0.01)
        assert spans
        # No injected context: the request span stays on the server's
        # own connection trace (which names the server's service).
        assert spans[-1].trace_id.startswith("prop-nest-")


# ---------------------------------------------------------------------------
# retries: one trace, sibling attempt spans
# ---------------------------------------------------------------------------
@pytest.mark.faults
class TestRetryAttempts:
    def test_reset_mid_request_yields_sibling_attempts(self):
        # Connection 1 seeds the file untraced; connection 2 (the
        # traced client) dies mid-response; connection 3 is the retry.
        plan = FaultPlan.reset_once(connection=2, op="write")
        srv = NestServer(NestConfig(name="retry-nest",
                                    protocols=("chirp",)), faults=plan)
        srv.start()
        try:
            srv.storage.mkdir("admin", "/data")
            srv.storage.acl_set("admin", "/data", "*", "rliwd")
            with ChirpClient(*srv.endpoint("chirp")) as seed:
                seed.put("/data/r.bin", b"retry" * 256)
            recorder = SpanRecorder()
            root = Tracer(recorder=recorder,
                          service="cli").start_trace("job")
            retry = RetryPolicy(max_attempts=4, base_delay=0.01,
                                max_delay=0.05, deadline=5.0)
            with root:
                with ChirpClient(*srv.endpoint("chirp"),
                                 retry=retry) as client:
                    assert client.get("/data/r.bin") == b"retry" * 256
            attempts = [s for s in recorder.spans()
                        if s.name == "attempt"
                        and "get" in str(s.attributes.get("op", ""))]
            assert len(attempts) >= 2, "the reset never forced a retry"
            # Same trace, same parent (siblings), distinct span ids,
            # ordinals counting up, first attempt marked failed.
            assert {s.trace_id for s in attempts} == {root.trace_id}
            assert {s.parent_id for s in attempts} == {root.span_id}
            assert len({s.span_id for s in attempts}) == len(attempts)
            ordinals = sorted(s.attributes["attempt"] for s in attempts)
            assert ordinals == list(range(1, len(attempts) + 1))
            assert attempts[0].status == "error"
            assert attempts[-1].status == "ok"
        finally:
            srv.stop()
