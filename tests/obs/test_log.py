"""Structured logging and the observability lint lane."""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

from repro.obs.log import console, get_logger

REPO = Path(__file__).resolve().parent.parent.parent
LINT = REPO / "scripts" / "lint_obs.py"


class TestLogger:
    def test_get_logger_pins_the_repro_namespace(self):
        assert get_logger("nest.server").name == "repro.nest.server"
        assert get_logger("repro.client").name == "repro.client"
        assert get_logger("repro").name == "repro"

    def test_console_writes_to_current_stdout(self, capsys):
        console("hello operator")
        assert capsys.readouterr().out == "hello operator\n"

    def test_console_handler_is_installed_once(self):
        console("one")
        console("two")
        assert len(get_logger("repro.console").handlers) == 1


def _lint_module():
    spec = importlib.util.spec_from_file_location("lint_obs", LINT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLintLane:
    def test_tree_is_clean(self):
        proc = subprocess.run([sys.executable, str(LINT)],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr

    def test_bare_print_is_flagged(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    print('oops')\n")
        found = _lint_module()._violations(bad, "bad.py")
        assert len(found) == 1
        assert "bare print()" in found[0]

    def test_naked_getlogger_is_flagged(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import logging\nlog = logging.getLogger('x')\n")
        found = _lint_module()._violations(bad, "bad.py")
        assert len(found) == 1
        assert "logging.getLogger" in found[0]

    def test_mentions_in_docstrings_are_ignored(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text('"""Never call print() or logging.getLogger()."""\n')
        assert _lint_module()._violations(ok, "ok.py") == []

    def test_allowlisted_files_may_print(self, tmp_path):
        cli = tmp_path / "cli.py"
        cli.write_text("print('usage: ...')\n")
        assert _lint_module()._violations(cli, "cli.py") == []
