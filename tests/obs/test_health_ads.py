"""Live-health consolidation and measured-performance discovery.

The health monitor turns the data path's byte stream and request
outcomes into ClassAd attributes; the advertisement merges them; the
collector ranks two NeSTs by *measured* throughput, not free space.
"""

from __future__ import annotations

from repro.client import ChirpClient
from repro.grid.discovery import Collector
from repro.nest.advertise import throughput_request_ad
from repro.nest.config import NestConfig
from repro.nest.server import NestServer
from repro.obs.health import HealthMonitor
from repro.obs.metrics import MetricsRegistry


class TestHealthMonitor:
    def _monitor(self, clock):
        return HealthMonitor(MetricsRegistry(), window=10.0, clock=clock)

    def test_rolling_throughput(self):
        now = [100.0]
        mon = self._monitor(lambda: now[0])
        mon.record_bytes(5_000_000)
        assert mon.throughput_bps() == 500_000  # 5 MB over a 10 s window

    def test_old_bytes_age_out_of_the_window(self):
        now = [100.0]
        mon = self._monitor(lambda: now[0])
        mon.record_bytes(5_000_000)
        now[0] += 60.0
        assert mon.throughput_bps() == 0.0

    def test_error_rates_per_protocol(self):
        mon = self._monitor(lambda: 0.0)
        for ok in (True, True, True, False):
            mon.record_request("chirp", ok)
        mon.record_request("http", True)
        assert mon.error_rate("chirp") == 0.25
        assert mon.error_rate("http") == 0.0
        assert mon.error_rate("nfs") == 0.0  # never seen: no errors

    def test_probes_sampled_at_snapshot_time(self):
        mon = self._monitor(lambda: 0.0)
        depth = [4]
        mon.add_probe("queue_depth", lambda: depth[0])
        assert mon.snapshot()["probes"]["queue_depth"] == 4.0
        depth[0] = 9
        assert mon.snapshot()["probes"]["queue_depth"] == 9.0

    def test_dead_probe_reads_as_zero(self):
        mon = self._monitor(lambda: 0.0)
        mon.add_probe("broken", lambda: 1 / 0)
        assert mon.snapshot()["probes"]["broken"] == 0.0

    def test_ad_attributes_shape(self):
        now = [100.0]
        mon = self._monitor(lambda: now[0])
        mon.record_bytes(10_000_000)
        mon.record_request("chirp", True)
        mon.record_request("chirp", False)
        mon.add_probe("queue_depth", lambda: 3)
        attrs = mon.ad_attributes()
        assert attrs["ThroughputMBps"] == 1.0  # 10 MB / 10 s window
        assert attrs["QueueDepth"] == 3
        assert attrs["RequestsServed"] == 2
        assert attrs["ChirpErrorRate"] == 0.5


class TestAdvertisementMerge:
    def test_health_attributes_land_in_the_ad(self):
        server = NestServer(NestConfig(name="adv-nest",
                                       protocols=("chirp",)))
        try:
            ad = server.advertisement()
            assert ad.eval("ThroughputMBps") == 0.0
            assert ad.eval("QueueDepth") == 0
            assert ad.eval("RequestsServed") == 0
            # The static consolidation is still there alongside.
            assert ad.eval("FreeSpace") > 0
        finally:
            server.transfers.shutdown()

    def test_measured_error_rate_is_advertised(self):
        server = NestServer(NestConfig(name="adv-nest",
                                       protocols=("chirp",)))
        try:
            server.obs.health.record_request("chirp", False)
            assert server.advertisement().eval("ChirpErrorRate") == 1.0
        finally:
            server.transfers.shutdown()


class TestDiscoveryRanking:
    def test_collector_ranks_two_nests_by_measured_throughput(self):
        """Two live appliances; the one that actually moved more data
        wins the throughput-ranked matchmaking, even though both have
        identical free space."""
        collector = Collector()
        servers = []
        try:
            for name in ("nest-busy", "nest-idle"):
                srv = NestServer(NestConfig(name=name,
                                            protocols=("chirp",)))
                srv.start()
                srv.storage.mkdir("admin", "/data")
                srv.storage.acl_set("admin", "/data", "*", "rliwd")
                servers.append(srv)
            busy, idle = servers
            with ChirpClient(*busy.endpoint("chirp")) as c:
                c.put("/data/big.bin", b"b" * (2 << 20))
            with ChirpClient(*idle.endpoint("chirp")) as c:
                c.put("/data/small.bin", b"s" * 4096)
            for srv in servers:
                collector.advertise(srv.advertisement())
            best = collector.fastest(1024, protocol="chirp")
            assert best is not None
            assert best.eval("Name") == "nest-busy"
            assert best.eval("ThroughputMBps") > 0
        finally:
            for srv in servers:
                srv.stop()

    def test_fastest_with_no_candidates_is_none(self):
        assert Collector().fastest(1024) is None

    def test_throughput_request_ad_ranks_on_measured_rate(self):
        ad = throughput_request_ad(4096, protocol="chirp")
        assert ad.eval("RequestedSpace") == 4096
        assert "ThroughputMBps" in ad.get_expr("Rank").external_repr()
