"""The SLO engine: declarative objectives over metric snapshots.

Synthetic snapshots drive the engine through a fake clock, so the
window arithmetic -- budget remaining, multi-window burn rates,
degradation -- is asserted exactly, without sleeping.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEngine, SloObjective, default_objectives


class Clock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


def counter_entry(series, labels=("protocol", "op", "outcome")):
    return {"kind": "counter", "labels": labels, "help": "",
            "series": dict(series)}


def histogram_entry(count, within, bounds=(0.1, 1.0)):
    # cumulative buckets: [<=0.1, <=1.0, +Inf]
    return {"kind": "histogram", "labels": ("protocol",), "help": "",
            "buckets": list(bounds),
            "series": {"chirp": {"count": count, "sum": float(count),
                                 "buckets": [within, within, count]}}}


def gauge_entry(value):
    return {"kind": "gauge", "labels": (), "help": "",
            "series": {"": value}}


ERRORS = SloObjective("errors", kind="error_rate", metric="reqs",
                      target=0.99)
LATENCY = SloObjective("latency", kind="latency", metric="lat",
                       target=0.99, threshold=1.0)
LAG = SloObjective("lag", kind="value_under", metric="lag_s",
                   target=0.9, threshold=300.0)


class TestObjectives:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SloObjective("x", kind="vibes", metric="m")

    def test_target_must_be_fraction(self):
        with pytest.raises(ValueError, match="target"):
            SloObjective("x", kind="latency", metric="m", target=1.0)

    def test_defaults_cover_the_acceptance_objectives(self):
        names = {o.name for o in default_objectives()}
        assert names == {"request_latency_p99", "request_error_rate",
                         "replica_repair_lag"}


class TestErrorRate:
    def test_all_ok_is_compliant_with_full_budget(self):
        engine = SloEngine(objectives=(ERRORS,), clock=Clock())
        (status,) = engine.evaluate(
            {"reqs": counter_entry({"chirp,get,ok": 100.0})})
        assert status["compliant"] and not status["degraded"]
        assert status["error_budget_remaining"] == 1.0

    def test_burst_of_errors_blows_the_budget(self):
        clock = Clock()
        engine = SloEngine(objectives=(ERRORS,), windows=(60.0, 600.0),
                           clock=clock)
        engine.sample({"reqs": counter_entry({"chirp,get,ok": 100.0})})
        clock.now += 30.0
        (status,) = engine.evaluate(
            {"reqs": counter_entry({"chirp,get,ok": 100.0,
                                    "chirp,get,error": 10.0})})
        # 10 bad of 10 new events in-window: far beyond the 1% budget.
        assert not status["compliant"]
        assert status["degraded"]
        assert status["error_budget_remaining"] == 0.0
        assert status["burn_rate"]["60s"] > 1.0

    def test_budget_recovers_as_the_bad_window_ages_out(self):
        clock = Clock()
        engine = SloEngine(objectives=(ERRORS,), windows=(60.0, 600.0),
                           clock=clock)
        engine.sample({"reqs": counter_entry({"chirp,get,error": 5.0})})
        bad_then_good = {"reqs": counter_entry(
            {"chirp,get,error": 5.0, "chirp,get,ok": 10000.0})}
        clock.now += 700.0  # the errors fall off the long window
        (status,) = engine.evaluate(bad_then_good)
        assert status["compliant"]
        assert status["error_budget_remaining"] == 1.0


class TestLatency:
    def test_fast_requests_comply(self):
        engine = SloEngine(objectives=(LATENCY,), clock=Clock())
        (status,) = engine.evaluate({"lat": histogram_entry(100, 100)})
        assert status["compliant"]

    def test_slow_tail_breaks_the_objective(self):
        clock = Clock()
        engine = SloEngine(objectives=(LATENCY,), clock=clock)
        engine.sample({"lat": histogram_entry(100, 100)})
        clock.now += 10.0
        # 10 new requests, none inside the 1.0s bound.
        (status,) = engine.evaluate({"lat": histogram_entry(110, 100)})
        assert not status["compliant"]
        assert status["degraded"]


class TestValueUnder:
    def test_bounded_gauge_is_one_good_event_per_sample(self):
        engine = SloEngine(objectives=(LAG,), clock=Clock())
        (status,) = engine.evaluate({"lag_s": gauge_entry(12.0)})
        assert status["compliant"]
        assert status["events"] == 1.0

    def test_runaway_lag_degrades(self):
        clock = Clock()
        engine = SloEngine(objectives=(LAG,), clock=clock)
        for _ in range(5):
            clock.now += 5.0
            (status,) = engine.evaluate({"lag_s": gauge_entry(9999.0)})
        assert not status["compliant"]
        assert status["degraded"]

    def test_worst_shard_governs_merged_gauges(self):
        engine = SloEngine(objectives=(LAG,), clock=Clock())
        entry = {"kind": "gauge", "labels": (), "help": "",
                 "series": {("", "0"): 1.0, ("", "1"): 5000.0}}
        (status,) = engine.evaluate({"lag_s": entry})
        assert not status["compliant"]


class TestNoData:
    def test_absent_metric_reads_compliant_no_data(self):
        engine = SloEngine(objectives=(LAG,), clock=Clock())
        (status,) = engine.evaluate({})
        assert status["no_data"]
        assert status["compliant"] and not status["degraded"]


class TestPublication:
    def test_gauges_and_report_and_attributes(self):
        registry = MetricsRegistry()
        reqs = registry.counter("reqs", "requests",
                                labelnames=("protocol", "op", "outcome"))
        clock = Clock()
        engine = SloEngine(registry=registry, objectives=(ERRORS,),
                           clock=clock)
        reqs.inc(50, protocol="chirp", op="get", outcome="ok")
        engine.sample()
        clock.now += 5.0
        reqs.inc(50, protocol="chirp", op="get", outcome="error")
        report = engine.report()
        assert report["degraded"]
        assert report["objectives"][0]["objective"] == "errors"
        snapshot = registry.snapshot()
        assert "slo_error_budget_remaining" in snapshot
        assert "slo_compliant" in snapshot
        assert "slo_burn_rate" in snapshot
        attrs = engine.attributes()
        assert attrs["SloDegraded"] is True
        assert attrs["SloWorstBudgetRemaining"] == 0.0

    def test_engine_samples_its_own_registry_when_wired(self):
        registry = MetricsRegistry()
        requests = registry.counter("nest_requests_total", "t",
                                    labelnames=("protocol", "op",
                                                "outcome"))
        requests.inc(protocol="chirp", op="get", outcome="ok")
        engine = SloEngine(registry=registry, clock=Clock())
        statuses = engine.evaluate()
        by_name = {s["objective"]: s for s in statuses}
        assert not by_name["request_error_rate"]["no_data"]
        assert by_name["request_error_rate"]["compliant"]
