"""Units for request spans and thread-local propagation."""

from __future__ import annotations

import threading

from repro.obs.spans import (
    NULL_SPAN,
    SpanRecorder,
    Tracer,
    annotate,
    current_span,
    maybe_span,
)


class TestSpanLifecycle:
    def test_root_and_child_share_a_trace(self):
        tracer = Tracer()
        root = tracer.start_trace("accept", protocol="chirp")
        child = root.child("request", op="open")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_end_is_idempotent_and_records_once(self):
        recorder = SpanRecorder()
        span = Tracer(recorder).start_trace("accept")
        span.end()
        first = span.duration
        span.end()
        assert span.duration == first
        assert len(recorder) == 1

    def test_context_manager_sets_error_status_on_exception(self):
        recorder = SpanRecorder()
        span = Tracer(recorder).start_trace("request")
        try:
            with span:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert span.status == "error"
        assert span.ended

    def test_child_at_records_retroactive_timing(self):
        recorder = SpanRecorder()
        root = Tracer(recorder).start_trace("request")
        child = root.child_at("queue", start=123.0, duration=0.25)
        assert child.start == 123.0
        assert child.duration == 0.25
        assert child in recorder.spans()

    def test_to_dict_round_trips_attributes(self):
        span = Tracer().start_trace("accept", protocol="ftp")
        span.set(user="anonymous").add("retries").end()
        doc = span.to_dict()
        assert doc["attributes"] == {
            "protocol": "ftp", "user": "anonymous", "retries": 1}
        assert doc["status"] == "ok"


class TestPropagation:
    def test_maybe_span_is_null_outside_a_trace(self):
        assert current_span() is None
        assert maybe_span("storage") is NULL_SPAN

    def test_maybe_span_opens_a_real_child_inside_a_trace(self):
        recorder = SpanRecorder()
        root = Tracer(recorder).start_trace("request")
        with root:
            inner = maybe_span("storage", op="get")
            assert inner is not NULL_SPAN
            with inner:
                assert current_span() is inner
            assert current_span() is root
        assert current_span() is None

    def test_annotate_lands_on_the_active_span(self):
        root = Tracer().start_trace("request")
        with root:
            annotate("faults")
            annotate("faults")
        assert root.attributes["faults"] == 2

    def test_annotate_outside_a_trace_is_a_noop(self):
        annotate("faults")  # must not raise

    def test_stack_is_thread_local(self):
        root = Tracer().start_trace("request")
        seen = []
        with root:
            t = threading.Thread(target=lambda: seen.append(current_span()))
            t.start()
            t.join()
        assert seen == [None]


class TestRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        recorder = SpanRecorder(limit=3)
        tracer = Tracer(recorder)
        for i in range(5):
            tracer.start_trace(f"s{i}").end()
        names = [s.name for s in recorder.spans()]
        assert names == ["s2", "s3", "s4"]
        assert recorder.dropped == 2

    def test_trace_filters_by_id(self):
        recorder = SpanRecorder()
        tracer = Tracer(recorder)
        a = tracer.start_trace("a")
        b = tracer.start_trace("b")
        a.child("a1").end()
        b.child("b1").end()
        a.end()
        b.end()
        assert {s.name for s in recorder.trace(a.trace_id)} == {"a", "a1"}
