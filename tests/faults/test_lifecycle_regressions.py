"""Regressions for the server/transfer lifecycle bug sweep.

Three bugs the concurrency work exposed, each pinned here:

* ``TransferManager.shutdown()`` abandoned queued/in-flight transfers:
  waiters sat out the full ``wait()`` timeout and pooled buffers
  leaked from ``DEFAULT_POOL``.
* ``NestServer.stop()`` could ``join()`` a handler thread the accept
  loop had registered but not yet started, crashing the drain with
  RuntimeError.
* Re-calling ``advertise_to(..., readvertise_interval=0)`` on a
  running server left the old heartbeat spinning on ``Event.wait(0)``,
  flooding the collector with ads.
"""

from __future__ import annotations

import io
import socket
import threading
import time

import pytest

from repro.nest import io as fastio
from repro.nest.config import NestConfig
from repro.nest.handlers import ChirpHandler
from repro.nest.transfer import TransferError, TransferManager


def _thread_names(prefix: str) -> list[str]:
    return [t.name for t in threading.enumerate()
            if t.name.startswith(prefix)]


class GatedSource:
    """``readinto`` blocks until the gate opens, then yields forever --
    a transfer quantum that is reliably *in flight* at shutdown."""

    def __init__(self) -> None:
        self.gate = threading.Event()

    def readinto(self, view) -> int:
        self.gate.wait(10.0)
        view[:] = b"x" * len(view)
        return len(view)


class TestShutdownFailsPending:
    def test_waiters_unblock_fast_and_buffers_return(self):
        config = NestConfig(name="shutdown-test", protocols=("chirp",),
                            transfer_workers=1)
        manager = TransferManager(config)
        pool0 = fastio.DEFAULT_POOL.snapshot()["outstanding"]
        blocker_src = GatedSource()
        # Total far beyond one burst grant, so the in-flight quantum
        # cannot complete the transfer before shutdown lands.
        blocker = manager.submit(blocker_src, io.BytesIO(),
                                 total=config.burst_bytes * 16,
                                 protocol="chirp")
        deadline = time.monotonic() + 5.0
        while manager.in_flight() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert manager.in_flight() == 1
        # With the single worker occupied, these stay queued forever.
        queued = [manager.submit(io.BytesIO(b"d" * 1024), io.BytesIO(),
                                 total=1024, protocol="chirp")
                  for _ in range(4)]
        t0 = time.perf_counter()
        manager.shutdown()
        for transfer in queued:
            with pytest.raises(TransferError, match="manager shut down"):
                transfer.wait(timeout=10.0)
        # The bug: these waits blocked their full timeout instead.
        assert time.perf_counter() - t0 < 1.0
        # The in-flight quantum returns after the gate opens and must
        # fail the same way rather than re-enqueue into a dead queue.
        blocker_src.gate.set()
        with pytest.raises(TransferError, match="manager shut down"):
            blocker.wait(timeout=10.0)
        deadline = time.monotonic() + 2.0
        while (fastio.DEFAULT_POOL.snapshot()["outstanding"] != pool0
               and time.monotonic() < deadline):
            time.sleep(0.005)
        # The bug: the blocker's pooled buffer leaked (outstanding
        # never decremented).
        assert fastio.DEFAULT_POOL.snapshot()["outstanding"] == pool0
        assert any("manager shut down" in repr(f["error"])
                   for f in manager.failures())

    def test_shutdown_with_no_pending_is_quiet(self):
        config = NestConfig(name="shutdown-quiet", protocols=("chirp",))
        manager = TransferManager(config)
        sink = io.BytesIO()
        manager.submit(io.BytesIO(b"ok"), sink, total=2,
                       protocol="chirp").wait(timeout=10.0)
        manager.shutdown()
        assert sink.getvalue() == b"ok"
        assert not manager.failures()


class TestStopAcceptRace:
    def test_stop_tolerates_not_yet_started_handler_thread(
            self, server_factory):
        srv = server_factory(protocols=("chirp",))
        # Freeze the hand-off at its racy point: the handler is in
        # _connections but its thread has not started -- exactly the
        # window the accept loop opens between register and start().
        client, conn = socket.socketpair()
        handler = ChirpHandler(srv, conn, ("127.0.0.1", 0))
        thread = threading.Thread(target=srv._run_handler, args=(handler,),
                                  daemon=True)
        with srv._conn_lock:
            srv._connections[handler] = thread
        # Generous delay: stop() spends up to one accept-timeout
        # joining the accept thread before it reaches the straggler
        # sweep, and the thread must still be unstarted there.
        starter = threading.Timer(1.0, thread.start)
        starter.start()
        try:
            # The bug: the straggler join hit the never-started thread
            # and raised RuntimeError mid-drain.
            result = srv.stop(drain_timeout=0.05)
        finally:
            client.close()
        assert result["forced"] >= 1
        thread.join(5.0)
        # The handler stayed in the drain set the whole time and is
        # gone now -- the fix must not trade the race for a leak.
        assert srv.active_connections() == 0

    def test_clean_stop_still_drains(self, server_factory):
        from repro.client.chirp import ChirpClient

        srv = server_factory(protocols=("chirp",))
        with ChirpClient(*srv.endpoint("chirp")) as c:
            c.put("/data/drain.bin", b"d" * 4096)
        result = srv.stop(drain_timeout=2.0)
        assert result == {"drained": 1, "forced": 0}
        assert srv.active_connections() == 0


class CountingCollector:
    """Collector stand-in that just counts publishes."""

    def __init__(self) -> None:
        self.ads = 0
        self.withdrawn: list[str] = []

    def advertise(self, ad, ttl=None) -> None:
        self.ads += 1

    def withdraw(self, name: str) -> None:
        self.withdrawn.append(name)


class TestHeartbeatReconfigure:
    def test_disabling_interval_stops_heartbeat(self, server_factory):
        srv = server_factory(protocols=("chirp",))
        collector = CountingCollector()
        srv.advertise_to(collector, readvertise_interval=0.02)
        deadline = time.monotonic() + 5.0
        while collector.ads < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert collector.ads >= 3  # heartbeat alive and beating
        srv.advertise_to(collector, readvertise_interval=0.0)
        # Reconfigure joined the beat thread -- not merely signalled.
        assert srv._advert_thread is None
        baseline = collector.ads
        time.sleep(0.25)
        # The bug: the old thread re-read the interval and
        # Event.wait(0) returned immediately -- a hot spin publishing
        # hundreds of ads here instead of zero.
        assert collector.ads == baseline
        assert not _thread_names(f"nest-advertise-{srv.config.name}")

    def test_interval_change_replaces_not_duplicates(self, server_factory):
        srv = server_factory(protocols=("chirp",))
        collector = CountingCollector()
        srv.advertise_to(collector, readvertise_interval=30.0)
        srv.advertise_to(collector, readvertise_interval=0.02)
        deadline = time.monotonic() + 5.0
        while collector.ads < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert collector.ads >= 4  # the new fast interval took over
        names = _thread_names(f"nest-advertise-{srv.config.name}")
        assert len(names) == 1  # old beat joined, exactly one remains
