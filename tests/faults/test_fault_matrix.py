"""The fault matrix: every protocol client x injected connection fault.

Contract under test (the hardening acceptance criteria): under any of
the plan's faults a client either **retries to success** (byte-identical
round trip) or **surfaces a typed error** -- it never hangs and never
silently returns partial data.  The conftest's hard timeout enforces
the "never hangs" half; the assertions here enforce the rest.

Per-protocol notes baked into the tables below:

* IBP ``store`` is append-only, hence non-idempotent: when a fault
  lands after the command was sent, the client must *not* replay it and
  instead surfaces a typed :class:`TransientError`.
* FTP/GridFTP perform a login handshake at connect time, so the initial
  connect itself runs under the retry policy.
"""

from __future__ import annotations

import pytest

from repro.client.chirp import ChirpClient
from repro.client.errors import TransientError
from repro.client.ftp import FtpClient
from repro.client.gridftp import GridFtpClient
from repro.client.http import HttpClient
from repro.client.ibp import IbpClient
from repro.client.nfs import NfsClient
from repro.client.retry import RetryPolicy
from repro.faults import FaultAction, FaultPlan

PAYLOAD = bytes(range(256)) * 256  # 64 KiB, deterministic


def fast_retry(**overrides) -> RetryPolicy:
    kwargs = dict(max_attempts=4, base_delay=0.01, max_delay=0.05,
                  deadline=15.0)
    kwargs.update(overrides)
    return RetryPolicy(**kwargs)


#: Extra server configuration per protocol (IBP needs its own listener
#: and lot-backed allocations, like a real depot).
SERVER_KW = {
    "ibp": dict(protocols=("chirp", "ibp"), require_lots=True,
                lot_enforcement="nest", capacity_bytes=10_000_000),
}


def run_chirp(server, retry, faults=None, timeout=30.0) -> bytes:
    with ChirpClient(*server.endpoint("chirp"), timeout=timeout,
                     retry=retry, faults=faults) as c:
        c.put("/data/f", PAYLOAD)
        return c.get("/data/f")


def run_http(server, retry, faults=None, timeout=30.0) -> bytes:
    with HttpClient(*server.endpoint("http"), timeout=timeout,
                    retry=retry, faults=faults) as c:
        c.put("/data/f", PAYLOAD)
        return c.get("/data/f")


def run_ftp(server, retry, faults=None, timeout=30.0) -> bytes:
    with FtpClient(*server.endpoint("ftp"), timeout=timeout,
                   retry=retry, faults=faults) as c:
        c.stor("/data/f", PAYLOAD)
        return c.retr("/data/f")


def run_gridftp(server, retry, faults=None, timeout=30.0) -> bytes:
    with GridFtpClient(*server.endpoint("gridftp"), timeout=timeout,
                       retry=retry, faults=faults) as c:
        c.set_parallelism(2)
        c.stor_parallel("/data/f", PAYLOAD)
        return c.retr_parallel("/data/f")


def run_nfs(server, retry, faults=None, timeout=30.0) -> bytes:
    with NfsClient(*server.endpoint("nfs"), timeout=timeout,
                   retry=retry, faults=faults) as c:
        c.write_file("/data/f", PAYLOAD)
        return c.read_file("/data/f")


def run_ibp(server, retry, faults=None, timeout=30.0) -> bytes:
    with IbpClient(*server.endpoint("ibp"), timeout=timeout,
                   retry=retry, faults=faults) as c:
        # An idempotent probe leads, so a first-connection fault lands
        # on an operation the policy is allowed to replay.
        c.status()
        caps = c.allocate(len(PAYLOAD) + 4096, 600)
        c.store(caps["write"], PAYLOAD)
        return c.load(caps["read"])


ROUND_TRIPS = {
    "chirp": run_chirp,
    "http": run_http,
    "ftp": run_ftp,
    "gridftp": run_gridftp,
    "nfs": run_nfs,
    "ibp": run_ibp,
}
PROTOS = sorted(ROUND_TRIPS)


# ---------------------------------------------------------------------------
# fault: connection reset
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("proto", PROTOS)
def test_server_side_reset_is_retried(server_factory, proto):
    """The first accepted connection dies on its first I/O; the client
    reconnects, replays its handshake, and completes byte-identically."""
    plan = FaultPlan.reset_each_first_attempt(count=1)
    srv = server_factory(faults=plan, **SERVER_KW.get(proto, {}))
    assert ROUND_TRIPS[proto](srv, fast_retry()) == PAYLOAD
    assert plan.fired(FaultAction.RESET) >= 1


@pytest.mark.parametrize("proto", PROTOS)
def test_client_side_reset_once_per_connection_roundtrip(server_factory,
                                                         proto):
    """Acceptance criterion: under a reset-once-per-connection plan on
    the *client's* own sockets, every protocol completes PUT+GET via
    retry, byte-identical."""
    plan = FaultPlan.reset_each_first_attempt(count=1)
    srv = server_factory(**SERVER_KW.get(proto, {}))
    assert ROUND_TRIPS[proto](srv, fast_retry(), faults=plan) == PAYLOAD
    assert plan.fired(FaultAction.RESET) >= 1


# ---------------------------------------------------------------------------
# fault: short read (stream ends early)
# ---------------------------------------------------------------------------
#: Byte threshold tuned per wire format so the short lands mid-payload
#: (or, for IBP, on the store acknowledgement).
SHORT_AFTER = {"chirp": 20000, "http": 20000, "ftp": 20000,
               "gridftp": 20000, "nfs": 20000, "ibp": 30}
#: IBP's shorted store ack leaves the append's fate unknown -- the
#: client must surface a typed error rather than replay.
SHORT_EXPECTS_ERROR = {"ibp"}


@pytest.mark.parametrize("proto", PROTOS)
def test_short_stream_never_silently_truncates(server_factory, proto):
    plan = FaultPlan.short_read(after_bytes=SHORT_AFTER[proto],
                                connection=None)
    srv = server_factory(faults=plan, **SERVER_KW.get(proto, {}))
    if proto in SHORT_EXPECTS_ERROR:
        with pytest.raises(TransientError):
            ROUND_TRIPS[proto](srv, fast_retry())
    else:
        assert ROUND_TRIPS[proto](srv, fast_retry()) == PAYLOAD
    assert plan.fired(FaultAction.SHORT) == 1


# ---------------------------------------------------------------------------
# fault: accept-time failure
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("proto", PROTOS)
def test_accept_failure_is_retried(server_factory, proto):
    plan = FaultPlan.fail_accept(count=1)
    srv = server_factory(faults=plan, **SERVER_KW.get(proto, {}))
    assert ROUND_TRIPS[proto](srv, fast_retry()) == PAYLOAD
    assert plan.fired(FaultAction.DROP) == 1


# ---------------------------------------------------------------------------
# fault: stall past the retry deadline
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("proto", PROTOS)
def test_stall_past_deadline_surfaces_typed_error(server_factory, proto):
    """Every connection freezes before serving; the client's socket
    timeout trips each attempt and the budget runs out as a typed
    RetryExhaustedError -- never a hang."""
    plan = FaultPlan.stall(seconds=1.5, op="read", times=None)
    srv = server_factory(faults=plan, **SERVER_KW.get(proto, {}))
    with pytest.raises(TransientError):
        ROUND_TRIPS[proto](srv, fast_retry(max_attempts=2, deadline=5.0),
                           timeout=0.3)
    assert plan.fired(FaultAction.STALL) >= 1
