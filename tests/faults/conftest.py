"""Fixtures for the fault-injection suite.

Every test here runs under a hard per-test timeout so an injected
fault can *never* hang the suite -- the whole point of the fault lane
is "retry or typed error, never hang".  When the ``pytest-timeout``
plugin is installed its marker applies; otherwise a SIGALRM fallback
(main-thread only, POSIX) enforces the same bound.
"""

from __future__ import annotations

import signal
import threading

import pytest

from repro.nest.auth import CertificateAuthority
from repro.nest.config import NestConfig
from repro.nest.server import NestServer

HARD_TIMEOUT = 30.0


def pytest_collection_modifyitems(config, items):
    """Every test in this directory is part of the ``faults`` lane."""
    for item in items:
        if "tests/faults/" in str(item.fspath).replace("\\", "/"):
            item.add_marker(pytest.mark.faults)
            item.add_marker(pytest.mark.timeout(HARD_TIMEOUT))


def _have_pytest_timeout(config) -> bool:
    return config.pluginmanager.hasplugin("timeout")


@pytest.fixture(autouse=True)
def _hard_timeout(request):
    """SIGALRM fallback when pytest-timeout is not installed.

    pytest-timeout is a dev extra, not a hard dependency; this keeps
    the never-hang guarantee even in a bare environment.
    """
    if _have_pytest_timeout(request.config):
        yield
        return
    if (not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"fault-suite hard timeout: test exceeded {HARD_TIMEOUT}s "
            f"(a fault scenario hung instead of failing fast)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, HARD_TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority("Fault Test CA")


def make_server(ca, faults=None, protocols=None, **config_kwargs):
    """A started NeST with an open /data directory."""
    cfg_kwargs = dict(name="fault-nest")
    if protocols is not None:
        cfg_kwargs["protocols"] = protocols
    cfg_kwargs.update(config_kwargs)
    srv = NestServer(NestConfig(**cfg_kwargs), ca=ca, faults=faults)
    srv.start()
    srv.storage.mkdir("admin", "/data")
    srv.storage.acl_set("admin", "/data", "*", "rliwd")
    return srv


@pytest.fixture
def server_factory(ca):
    """Callable -> started server; everything stopped at teardown."""
    servers = []

    def factory(faults=None, **kwargs):
        srv = make_server(ca, faults=faults, **kwargs)
        servers.append(srv)
        return srv

    yield factory
    for srv in servers:
        srv.stop(drain_timeout=2.0)
