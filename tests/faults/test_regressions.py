"""Regression tests for the connection-lifecycle bug sweep.

One test class per fixed bug:

* :class:`TestFileHandleInvalidation` -- ``FileHandleRegistry.forget``
  existed but was never called; stale NFS handles kept resolving to
  deleted or renamed files.
* :class:`TestGridFtpHungLane` -- parallel-stream joins used a silent
  60 s timeout; a hung lane truncated the transfer with success status.
* :class:`TestFtpDataTimeout` -- passive data connections hardcoded
  ``timeout=30`` and bypassed the fault hook.
* :class:`TestTransferFailureSurfacing` -- ``Transfer._finish``
  swallowed callback errors bare, and the manager kept no failure
  causes.
"""

from __future__ import annotations

import io
import threading
import time

import pytest

from repro.client.chirp import ChirpClient
from repro.client.errors import TransferError
from repro.client.ftp import FtpClient
from repro.client.gridftp import GridFtpClient
from repro.client.nfs import NfsClient, NfsError
from repro.client.retry import RetryPolicy
from repro.faults import FaultAction, FaultPlan, FaultRule
from repro.nest.config import NestConfig
from repro.nest.server import FileHandleRegistry, NestServer
from repro.nest.transfer import TransferManager


# ---------------------------------------------------------------------------
# satellite (a): file-handle invalidation
# ---------------------------------------------------------------------------
class TestFileHandleInvalidation:
    def test_forget_drops_handle_and_subtree(self):
        reg = FileHandleRegistry()
        t_file = reg.token_for("/data/a/f")
        t_dir = reg.token_for("/data/a")
        t_other = reg.token_for("/data/b")
        reg.forget("/data/a")
        assert reg.path_of(t_file) is None
        assert reg.path_of(t_dir) is None
        assert reg.path_of(t_other) == "/data/b"

    def test_forget_never_drops_root(self):
        reg = FileHandleRegistry()
        reg.forget("/")
        assert reg.path_of(1) == "/"

    @staticmethod
    def _put(storage, path: str, data: bytes) -> None:
        ticket = storage.approve_put("admin", path, len(data))
        ticket.stream.write(data)
        ticket.settle(len(data))

    def test_storage_delete_invalidates_handle(self):
        srv = NestServer(NestConfig(name="reg"))
        srv.storage.mkdir("admin", "/data")
        self._put(srv.storage, "/data/f", b"x")
        token = srv.fhandles.token_for("/data/f")
        srv.storage.delete("admin", "/data/f")
        assert srv.fhandles.path_of(token) is None

    def test_storage_rename_invalidates_old_subtree(self):
        srv = NestServer(NestConfig(name="reg"))
        srv.storage.mkdir("admin", "/data")
        srv.storage.mkdir("admin", "/data/dir")
        self._put(srv.storage, "/data/dir/f", b"x")
        t_dir = srv.fhandles.token_for("/data/dir")
        t_file = srv.fhandles.token_for("/data/dir/f")
        srv.storage.rename("admin", "/data/dir", "/data/moved")
        assert srv.fhandles.path_of(t_dir) is None
        assert srv.fhandles.path_of(t_file) is None

    def test_storage_rmdir_invalidates_handle(self):
        srv = NestServer(NestConfig(name="reg"))
        srv.storage.mkdir("admin", "/data")
        token = srv.fhandles.token_for("/data")
        srv.storage.rmdir("admin", "/data")
        assert srv.fhandles.path_of(token) is None

    def test_nfs_handle_goes_stale_over_the_wire(self, server_factory):
        """End to end: delete via Chirp, old NFS handle must not
        resolve (previously it kept working against the dead path)."""
        srv = server_factory()
        with ChirpClient(*srv.endpoint("chirp")) as admin:
            admin.put("/data/f", b"contents")
            with NfsClient(*srv.endpoint("nfs")) as nfs_client:
                fh, attrs = nfs_client.lookup_path("/data/f")
                assert attrs["size"] == 8
                admin.unlink("/data/f")
                with pytest.raises(NfsError):
                    nfs_client.getattr(fh)


# ---------------------------------------------------------------------------
# satellite (b): GridFTP hung parallel lane
# ---------------------------------------------------------------------------
class _FakeConn:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class TestGridFtpHungLane:
    def _client(self, timeout: float) -> GridFtpClient:
        client = GridFtpClient.__new__(GridFtpClient)
        client.timeout = timeout
        return client

    def test_hung_lane_raises_instead_of_truncating(self):
        client = self._client(timeout=0.2)
        release = threading.Event()
        lane = threading.Thread(target=release.wait, args=(10,), daemon=True)
        lane.start()
        conn = _FakeConn()
        try:
            with pytest.raises(TransferError, match="hung"):
                client._join_lanes([lane], [conn], [])
            # The hung lane's socket was closed to unblock the worker.
            assert conn.closed
        finally:
            release.set()
            lane.join(timeout=5)

    def test_lane_error_raises(self):
        client = self._client(timeout=1.0)
        done = threading.Thread(target=lambda: None)
        done.start()
        done.join()
        with pytest.raises(TransferError, match="parallel stream failed"):
            client._join_lanes([done], [], [OSError("lane died")])

    def test_all_lanes_finished_is_quiet(self):
        client = self._client(timeout=1.0)
        done = threading.Thread(target=lambda: None)
        done.start()
        done.join()
        client._join_lanes([done], [_FakeConn()], [])


# ---------------------------------------------------------------------------
# satellite (c): FTP data-connection timeout threading
# ---------------------------------------------------------------------------
class TestFtpDataTimeout:
    def test_data_connection_inherits_constructor_timeout(
            self, server_factory):
        srv = server_factory()
        with FtpClient(*srv.endpoint("ftp"), timeout=2.25) as client:
            assert client.sock.gettimeout() == 2.25
            data_sock = client._open_passive()
            try:
                # Previously hardcoded to 30 regardless of the
                # constructor argument.
                assert data_sock.gettimeout() == 2.25
            finally:
                data_sock.close()

    def test_data_dial_goes_through_fault_plan(self, server_factory):
        """Client-side fault plans now see passive data dials: refuse
        the first one and the transfer retries on fresh connections."""
        srv = server_factory()
        plan = FaultPlan([FaultRule(op="connect", action=FaultAction.DROP,
                                    connections=frozenset({2}), times=1)])
        retry = RetryPolicy(max_attempts=3, base_delay=0.01, deadline=10.0)
        with FtpClient(*srv.endpoint("ftp"), retry=retry,
                       faults=plan) as client:
            client.stor("/data/f", b"after a refused data dial")
            assert client.retr("/data/f") == b"after a refused data dial"
        assert plan.fired(FaultAction.DROP) == 1


# ---------------------------------------------------------------------------
# satellite (d): transfer failure surfacing
# ---------------------------------------------------------------------------
class _ExplodingSource:
    def read(self, n: int) -> bytes:
        raise OSError("disk gone")


class TestTransferFailureSurfacing:
    @pytest.fixture
    def manager(self):
        tm = TransferManager(NestConfig(name="tm"))
        yield tm
        tm.shutdown()

    def test_failure_cause_is_recorded(self, manager):
        transfer = manager.submit(_ExplodingSource(), io.BytesIO(), 100,
                                  protocol="test", user="u", path="/x")
        with pytest.raises(OSError, match="disk gone"):
            transfer.wait(5)
        failures = manager.failures()
        assert len(failures) == 1
        cause = failures[0]
        assert cause["path"] == "/x" and cause["user"] == "u"
        assert cause["moved"] == 0 and cause["total"] == 100
        assert isinstance(cause["error"], OSError)

    def test_successful_transfer_records_nothing(self, manager):
        transfer = manager.submit(io.BytesIO(b"abc"), io.BytesIO(), 3,
                                  protocol="test")
        assert transfer.wait(5) == 3
        assert manager.failures() == []

    def test_on_done_error_is_kept_not_swallowed(self, manager):
        """The old code was ``except Exception: pass`` -- a broken
        completion callback vanished without trace."""
        def broken_callback(transfer):
            raise RuntimeError("callback bug")

        transfer = manager.submit(io.BytesIO(b"abc"), io.BytesIO(), 3,
                                  protocol="test", on_done=broken_callback)
        assert transfer.wait(5) == 3
        assert isinstance(transfer.callback_error, RuntimeError)

    def test_on_done_runs_before_waiters_release(self, manager):
        order = []

        def callback(transfer):
            time.sleep(0.05)
            order.append("callback")

        transfer = manager.submit(io.BytesIO(b"abc"), io.BytesIO(), 3,
                                  protocol="test", on_done=callback)
        transfer.wait(5)
        order.append("waiter")
        assert order == ["callback", "waiter"]
