"""Units for the two new subsystems: FaultPlan and RetryPolicy.

The plan must be deterministic (same seed, same faults) and honest
(every fired fault is recorded); the policy must respect idempotency,
deadlines, and the typed-error taxonomy.
"""

from __future__ import annotations

import socket

import pytest

from repro.client.errors import (
    ClientError,
    FatalError,
    RetryExhaustedError,
    TransientError,
    is_transient,
)
from repro.client.ftp import FtpError
from repro.client.retry import NO_RETRY, RetryPolicy
from repro.faults import (
    FaultAction,
    FaultInjected,
    FaultPlan,
    FaultRule,
)
from repro.protocols.common import ProtocolError


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------
class TestFaultPlanWiring:
    def test_each_wrap_consumes_one_ordinal(self):
        plan = FaultPlan()
        a, b = socket.socketpair()
        try:
            w1 = plan.wrap_socket(a)
            w2 = plan.wrap_socket(b)
            assert (w1.conn, w2.conn) == (1, 2)
        finally:
            a.close()
            b.close()

    def test_reset_fires_on_matching_connection_only(self):
        plan = FaultPlan.reset_once(connection=2, op="write")
        pairs = [socket.socketpair() for _ in range(2)]
        try:
            first = plan.wrap_socket(pairs[0][0])
            second = plan.wrap_socket(pairs[1][0])
            first.sendall(b"fine")  # connection 1: untouched
            with pytest.raises(FaultInjected):
                second.sendall(b"doomed")
            assert [e.conn for e in plan.events] == [2]
            assert plan.fired(FaultAction.RESET) == 1
        finally:
            for x, y in pairs:
                x.close()
                y.close()

    def test_reset_is_a_real_connection_reset_error(self):
        assert issubclass(FaultInjected, ConnectionResetError)

    def test_short_read_forces_clean_eof_after_threshold(self):
        plan = FaultPlan([FaultRule(op="write", action=FaultAction.SHORT,
                                    after_bytes=4)])
        a, b = socket.socketpair()
        try:
            writer = plan.wrap_socket(a)
            writer.sendall(b"data")  # 4 bytes through
            with pytest.raises(FaultInjected):
                writer.sendall(b"more")  # writer learns the stream died
            # The peer sees a short stream ending in clean EOF.
            b.settimeout(5)
            assert b.recv(100) == b"data"
            assert b.recv(100) == b""
        finally:
            b.close()

    def test_after_bytes_threshold_counts_stream_writes(self):
        plan = FaultPlan([FaultRule(op="write", action=FaultAction.RESET,
                                    after_bytes=10)])
        a, b = socket.socketpair()
        try:
            stream = plan.wrap_socket(a).makefile("wb")
            stream.write(b"12345")  # 5 moved: below threshold
            stream.write(b"67890")  # 10 moved: still below before this
            with pytest.raises(FaultInjected):
                stream.write(b"x")  # moved >= 10: fires
        finally:
            a.close()
            b.close()

    def test_accept_fault_closes_socket_and_returns_none(self):
        plan = FaultPlan.fail_accept(count=1)
        a, b = socket.socketpair()
        try:
            assert plan.wrap_accept(a) is None
            assert a.fileno() == -1  # closed by the plan
            wrapped = plan.wrap_accept(b)
            assert wrapped is not None and wrapped.conn == 2
        finally:
            b.close()

    def test_connect_fault_raises_without_dialling(self):
        plan = FaultPlan.fail_connect(count=1)
        dialled = []

        def dial():
            dialled.append(True)

        with pytest.raises(FaultInjected):
            plan.wrap_connect(dial)
        assert dialled == []  # the dial itself never ran

    def test_stall_sleeps_then_proceeds(self):
        naps = []
        plan = FaultPlan([FaultRule(op="write", action=FaultAction.STALL,
                                    stall_seconds=3.5)],
                         sleep=naps.append)
        a, b = socket.socketpair()
        try:
            plan.wrap_socket(a).sendall(b"after the stall")
            assert naps == [3.5]
            assert plan.fired(FaultAction.STALL) == 1
        finally:
            a.close()
            b.close()

    def test_probabilistic_rules_are_reproducible_per_seed(self):
        def run(seed: int) -> list[int]:
            plan = FaultPlan([FaultRule(op="write",
                                        action=FaultAction.RESET,
                                        probability=0.5, times=None)],
                             seed=seed)
            outcomes = []
            for _ in range(8):
                a, b = socket.socketpair()
                try:
                    wrapped = plan.wrap_socket(a)
                    try:
                        wrapped.sendall(b"x")
                        outcomes.append(0)
                    except FaultInjected:
                        outcomes.append(1)
                finally:
                    a.close()
                    b.close()
            return outcomes

        assert run(7) == run(7)
        assert 0 < sum(run(7)) < 8  # the coin actually flips

    def test_describe_is_json_able_summary(self):
        plan = FaultPlan.reset_once(after_bytes=100)
        info = plan.describe()
        assert info["seed"] == 0 and info["events"] == 0
        assert info["rules"][0]["action"] == FaultAction.RESET
        assert info["rules"][0]["after_bytes"] == 100

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(op="teleport", action=FaultAction.RESET)
        with pytest.raises(ValueError):
            FaultRule(op="read", action="explode")


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_wire_failures_are_transient(self):
        for exc in (ConnectionResetError(), socket.timeout(), EOFError(),
                    ProtocolError("eof"), OSError("unreachable"),
                    TransientError("x")):
            assert is_transient(exc), exc

    def test_server_refusals_are_fatal(self):
        assert not is_transient(FatalError("no"))
        assert not is_transient(ValueError("bug"))

    def test_ftp_codes_split_transient_and_permanent(self):
        assert is_transient(FtpError(426, "connection closed"))
        assert is_transient(FtpError(450, "try again"))
        assert not is_transient(FtpError(550, "no such file"))
        assert not is_transient(FtpError(530, "not logged in"))

    def test_retry_exhausted_is_itself_transient_and_typed(self):
        exc = RetryExhaustedError("gone", attempts=3, last=OSError())
        assert isinstance(exc, TransientError)
        assert isinstance(exc, ClientError)
        assert exc.attempts == 3


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def _policy(self, **kw) -> RetryPolicy:
        naps = []
        kwargs = dict(max_attempts=3, base_delay=0.1, multiplier=2.0,
                      max_delay=10.0, jitter=0.0, deadline=None,
                      sleep=naps.append)
        kwargs.update(kw)
        policy = RetryPolicy(**kwargs)
        policy.naps = naps  # type: ignore[attr-defined]
        return policy

    def test_transient_failures_retry_then_succeed(self):
        policy = self._policy()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionResetError("blip")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3
        assert policy.naps == [0.1, 0.2]  # geometric, unjittered

    def test_reset_runs_between_attempts(self):
        policy = self._policy(max_attempts=2)
        resets = []

        def failing():
            raise ConnectionResetError()

        with pytest.raises(RetryExhaustedError) as info:
            policy.call(failing, reset=lambda: resets.append(1))
        assert len(resets) == 2  # torn down after every failed attempt
        assert info.value.attempts == 2
        assert isinstance(info.value.last, ConnectionResetError)

    def test_fatal_errors_never_retry(self):
        policy = self._policy()
        attempts = []

        def refused():
            attempts.append(1)
            raise FatalError("permission denied")

        with pytest.raises(FatalError):
            policy.call(refused)
        assert len(attempts) == 1

    def test_non_idempotent_transient_raises_typed_immediately(self):
        policy = self._policy()
        attempts = []

        def append_op():
            attempts.append(1)
            raise ConnectionResetError()

        with pytest.raises(TransientError, match="not idempotent"):
            policy.call(append_op, idempotent=False)
        assert len(attempts) == 1
        assert policy.naps == []

    def test_retry_non_idempotent_opt_in(self):
        policy = self._policy(retry_non_idempotent=True)
        attempts = []

        def append_op():
            attempts.append(1)
            if len(attempts) < 2:
                raise ConnectionResetError()
            return "applied"

        assert policy.call(append_op, idempotent=False) == "applied"
        assert len(attempts) == 2

    def test_deadline_cuts_the_schedule_short(self):
        clock = {"now": 0.0}

        def fake_clock():
            return clock["now"]

        def fake_sleep(seconds):
            clock["now"] += seconds

        policy = RetryPolicy(max_attempts=100, base_delay=1.0,
                             multiplier=1.0, jitter=0.0, deadline=2.5,
                             clock=fake_clock, sleep=fake_sleep)

        def failing():
            raise ConnectionResetError()

        with pytest.raises(RetryExhaustedError, match="deadline"):
            policy.call(failing)
        assert clock["now"] <= 2.5  # never slept past the deadline

    def test_backoff_is_deterministic_per_seed(self):
        a = RetryPolicy(seed=3, jitter=0.5)
        b = RetryPolicy(seed=3, jitter=0.5)
        assert [a.backoff(i) for i in range(1, 5)] == \
               [b.backoff(i) for i in range(1, 5)]

    def test_backoff_caps_at_max_delay(self):
        policy = self._policy(jitter=0.0, base_delay=1.0, max_delay=3.0)
        assert policy.backoff(10) == 3.0

    def test_no_retry_policy_is_single_shot(self):
        attempts = []

        def failing():
            attempts.append(1)
            raise ConnectionResetError()

        with pytest.raises(RetryExhaustedError):
            NO_RETRY.call(failing)
        assert len(attempts) == 1

    def test_keyboard_interrupt_passes_through(self):
        policy = self._policy()

        def interrupted():
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            policy.call(interrupted)
