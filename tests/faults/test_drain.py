"""Graceful lifecycle: stop() drains in-flight work, leaks nothing.

Acceptance criterion: ``stop(drain_timeout=...)`` with transfers in
flight returns with zero leaked handler threads and sockets, and the
transfer manager can say *why* an interrupted transfer failed.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.client.chirp import ChirpClient
from repro.client.errors import ClientError
from repro.client.http import HttpClient
from repro.client.retry import RetryPolicy
from repro.faults import FaultAction, FaultPlan
from repro.jbos.httpd import NativeHttpd
from repro.protocols import chirp, http
from repro.protocols.common import Request, RequestType, write_line


def _wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _leaked_handler_threads():
    return [t for t in threading.enumerate()
            if t.is_alive() and t.name.startswith("nest-")
            and (t.name.endswith("-conn") or t.name.startswith("nest-accept"))]


class TestNestServerDrain:
    def test_clean_drain_closes_idle_connections(self, server_factory):
        srv = server_factory()
        client = ChirpClient(*srv.endpoint("chirp"))
        client.put("/data/f", b"payload")
        assert _wait_until(lambda: srv.active_connections() == 1)

        stats = srv.stop(drain_timeout=2.0)

        assert stats == {"drained": 1, "forced": 0}
        assert srv.active_connections() == 0
        assert _wait_until(lambda: not _leaked_handler_threads())
        # The idle connection was closed under the client: the next
        # operation cannot silently succeed.
        with pytest.raises(ClientError):
            client.get("/data/f")
        client.close()

    def test_forced_drain_zero_leaks_with_in_flight_transfer(
            self, server_factory):
        srv = server_factory()
        # A raw Chirp PUT that announces 1 MiB but sends only 1 KiB:
        # the handler parks mid-transfer waiting for the rest.
        sock = socket.create_connection(srv.endpoint("chirp"))
        wfile = sock.makefile("wb")
        write_line(wfile, chirp.encode_request(
            Request(rtype=RequestType.PUT, path="/data/big",
                    length=1 << 20)))
        wfile.write(b"x" * 1024)
        wfile.flush()
        assert _wait_until(
            lambda: any(getattr(h, "busy", False)
                        for h in list(srv._connections)))

        stats = srv.stop(drain_timeout=0.3)

        assert stats["forced"] >= 1
        assert srv.active_connections() == 0
        assert _wait_until(lambda: not _leaked_handler_threads())
        # The interrupted transfer left a readable cause, not just a
        # closed socket.
        failures = srv.transfers.failures()
        assert any(f["path"] == "/data/big" for f in failures)
        cause = next(f for f in failures if f["path"] == "/data/big")
        assert cause["moved"] < cause["total"]
        assert cause["error"] is not None
        sock.close()

    def test_in_flight_transfer_drains_within_timeout(self, server_factory):
        """A transfer that *can* finish during the window is not cut."""
        srv = server_factory()
        client = ChirpClient(*srv.endpoint("chirp"))
        data = bytes(range(256)) * 512  # 128 KiB
        client.put("/data/f", data)

        results = {}

        def slow_get():
            try:
                results["data"] = client.get("/data/f")
            except BaseException as exc:  # noqa: BLE001 - asserted below
                results["error"] = exc

        thread = threading.Thread(target=slow_get, daemon=True)
        thread.start()
        stats = srv.stop(drain_timeout=5.0)
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results.get("data") == data
        assert stats["forced"] == 0


class TestNativeServerDrain:
    def test_accept_fault_and_retry_against_native_daemon(self):
        plan = FaultPlan.fail_accept(count=1)
        with NativeHttpd(faults=plan) as srv:
            retry = RetryPolicy(max_attempts=3, base_delay=0.01,
                                deadline=10.0)
            with HttpClient(srv.host, srv.port, retry=retry) as client:
                client.put("/f", b"jbos payload")
                assert client.get("/f") == b"jbos payload"
        assert plan.fired(FaultAction.DROP) == 1

    def test_forced_drain_with_stuck_connection(self):
        srv = NativeHttpd().start()
        try:
            sock = socket.create_connection((srv.host, srv.port))
            wfile = sock.makefile("wb")
            # Announce a body that never arrives: handler blocks in
            # read_exact.
            http.write_request(wfile, Request(
                rtype=RequestType.PUT, path="/big", length=1 << 20))
            wfile.write(b"y" * 512)
            wfile.flush()
            assert _wait_until(lambda: srv.active_connections() == 1)

            stats = srv.stop(drain_timeout=0.3)

            assert stats["forced"] == 1
            assert srv.active_connections() == 0
            leaked = [t for t in threading.enumerate()
                      if t.is_alive() and t.name.startswith("jbos-")]
            assert _wait_until(lambda: not [
                t for t in threading.enumerate()
                if t.is_alive() and t.name.startswith("jbos-")]), leaked
            sock.close()
        finally:
            srv.stop(drain_timeout=0.1)

    def test_clean_stop_reports_drained(self):
        srv = NativeHttpd().start()
        with HttpClient(srv.host, srv.port) as client:
            client.put("/f", b"abc")
            assert client.get("/f") == b"abc"
        assert _wait_until(lambda: srv.active_connections() == 0)
        assert srv.stop(drain_timeout=2.0) == {"drained": 1, "forced": 0}


class TestConnectionTracking:
    def test_active_connections_follows_clients(self, server_factory):
        srv = server_factory()
        clients = [ChirpClient(*srv.endpoint("chirp")) for _ in range(3)]
        assert _wait_until(lambda: srv.active_connections() == 3)
        for c in clients:
            c.close()
        assert _wait_until(lambda: srv.active_connections() == 0)
