"""Group commit: batched fsyncs, the async/wait split, and durability
of every acknowledged record."""

import os
import threading

import pytest

from repro.durability.journal import MetadataJournal
from repro.durability.manager import DurabilityManager
from repro.nest.storage import StorageManager


@pytest.fixture
def journal_path(tmp_path):
    return str(tmp_path / "journal.log")


class TestAsyncSplit:
    def test_enqueue_then_wait_batches_into_one_flush(self, journal_path):
        """Records enqueued before anyone waits share a single
        write+fsync -- deterministically, no thread races needed."""
        j = MetadataJournal(journal_path, batch_records=64)
        seqs = [j.append_async("mkdir", {"path": f"/d{i}"})
                for i in range(50)]
        assert j.fsync_count == 0  # nothing durable yet
        j.wait_durable(seqs[-1])
        assert j.fsync_count == 1
        assert j.records_appended == 50
        assert j.last_seq == seqs[-1]
        replay = j.replay()
        assert [r["seq"] for r in replay.records] == seqs
        j.close()

    def test_batch_size_cap_is_honoured(self, journal_path):
        j = MetadataJournal(journal_path, batch_records=8)
        seqs = [j.append_async("mkdir", {"path": f"/d{i}"})
                for i in range(20)]
        j.wait_durable(seqs[-1])
        assert j.fsync_count == 3  # ceil(20 / 8)
        assert len(j.replay().records) == 20
        j.close()

    def test_wait_durable_noop_on_ungrouped_journal(self, journal_path):
        j = MetadataJournal(journal_path, batch_records=1)
        seq = j.append_async("mkdir", {"path": "/d"})
        # append_async degraded to a full synchronous append.
        assert j.fsync_count == 1 and j.last_seq == seq
        j.wait_durable(seq)
        assert j.fsync_count == 1
        j.close()

    def test_reset_refuses_while_records_pending(self, journal_path):
        j = MetadataJournal(journal_path, batch_records=64)
        j.append_async("mkdir", {"path": "/a"})
        assert not j.reset_if_quiescent(j.last_seq)
        j.wait_durable(j.append_async("mkdir", {"path": "/b"}))
        assert j.reset_if_quiescent(j.last_seq)
        j.close()

    def test_close_flushes_unwaited_records(self, journal_path):
        j = MetadataJournal(journal_path, batch_records=64)
        seqs = [j.append_async("mkdir", {"path": f"/d{i}"})
                for i in range(3)]
        j.close()
        j2 = MetadataJournal(journal_path)
        assert [r["seq"] for r in j2.replay().records] == seqs


class TestConcurrentAppenders:
    def test_every_acknowledged_record_is_on_disk(self, journal_path):
        """16 threads x 16 durable appends: far fewer fsyncs than
        records, no seq reused, and a fresh journal (the "crashed"
        process's successor) replays every one of them."""
        j = MetadataJournal(journal_path, batch_records=64)
        per_thread, nthreads = 16, 16
        barrier = threading.Barrier(nthreads)
        acked: list[int] = []
        lock = threading.Lock()

        def writer(w):
            barrier.wait()
            for i in range(per_thread):
                seq = j.append("put_begin", {"path": f"/w{w}-f{i}"})
                with lock:
                    acked.append(seq)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = per_thread * nthreads
        assert sorted(acked) == list(range(1, total + 1))
        assert j.records_appended == total
        # Group commit must have shared flushes under this much
        # concurrency; 1.0 fsync/record means batching never engaged.
        assert j.fsync_count < total
        # Simulated crash: no close, just replay what hit the disk.
        j2 = MetadataJournal(journal_path)
        replayed = {r["seq"] for r in j2.replay().records}
        assert replayed == set(range(1, total + 1))
        j.close()


class TestStorageIntegration:
    def test_op_exit_waits_for_durability_outside_the_lock(self, tmp_path):
        """The storage manager enqueues under its lock and waits in the
        op epilogue; every mutation acked to a caller is replayable."""
        storage = StorageManager(capacity_bytes=1 << 30, require_lots=False)
        dm = DurabilityManager(str(tmp_path / "state"), snapshot_every=0)
        dm.recover_into(storage)
        nthreads, per_thread = 8, 8
        barrier = threading.Barrier(nthreads)

        def writer(w):
            from repro.protocols.common import Request, RequestType
            barrier.wait()
            for i in range(per_thread):
                resp = storage.execute(Request(
                    rtype=RequestType.MKDIR, user="admin",
                    path=f"/w{w}-d{i}"))
                assert resp.status.value == "ok"

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        journal = dm.journal
        total = nthreads * per_thread
        assert journal.records_appended == total
        assert journal.fsync_count <= total
        # Crash without a graceful close: replay must see every mkdir.
        replay = MetadataJournal(journal.path).replay()
        made = {r["path"] for r in replay.records if r["type"] == "mkdir"}
        assert made == {f"/w{w}-d{i}" for w in range(nthreads)
                        for i in range(per_thread)}
        dm.close(snapshot=False)
