"""Fixtures for the durability lane.

Crash-recovery tests must never hang (a recovery that deadlocks is a
bug, not a slow test), so every test here runs under a hard per-test
timeout -- same pattern as the fault lane: pytest-timeout's marker
when the plugin is installed, a SIGALRM fallback otherwise.
"""

from __future__ import annotations

import signal
import threading

import pytest

HARD_TIMEOUT = 60.0


def pytest_collection_modifyitems(config, items):
    for item in items:
        if "tests/durability/" in str(item.fspath).replace("\\", "/"):
            item.add_marker(pytest.mark.timeout(HARD_TIMEOUT))


def _have_pytest_timeout(config) -> bool:
    return config.pluginmanager.hasplugin("timeout")


@pytest.fixture(autouse=True)
def _hard_timeout(request):
    if _have_pytest_timeout(request.config):
        yield
        return
    if (not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"durability hard timeout: test exceeded {HARD_TIMEOUT}s "
            f"(recovery hung instead of completing)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, HARD_TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
