"""Unit tests for the CRC-framed write-ahead journal and snapshots."""

from __future__ import annotations

import errno
import os

import pytest

from repro.durability.journal import JournalError, MetadataJournal
from repro.durability.snapshot import SnapshotStore
from repro.faults.disk import DiskFaultPlan, DiskFaultRule, SimulatedCrash
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def journal_path(tmp_path):
    return str(tmp_path / "journal.log")


def test_append_replay_roundtrip(journal_path):
    j = MetadataJournal(journal_path)
    assert j.append("mkdir", {"user": "alice", "path": "/a"}) == 1
    assert j.append("lot_create", {"lot_id": "lot1", "capacity": 100}) == 2
    j.close()
    result = MetadataJournal(journal_path).replay()
    assert not result.corrupt_tail
    assert [r["type"] for r in result.records] == ["mkdir", "lot_create"]
    assert [r["seq"] for r in result.records] == [1, 2]
    assert result.records[0]["path"] == "/a"


def test_replay_missing_file_is_empty(journal_path):
    result = MetadataJournal(journal_path).replay()
    assert result.records == [] and not result.corrupt_tail


def test_torn_tail_stops_replay_at_last_durable_record(journal_path):
    j = MetadataJournal(journal_path)
    for i in range(3):
        j.append("mkdir", {"path": f"/d{i}"})
    j.close()
    # Tear the last record: chop bytes off the file's tail.
    size = os.path.getsize(journal_path)
    with open(journal_path, "r+b") as f:
        f.truncate(size - 7)
    result = MetadataJournal(journal_path).replay()
    assert result.corrupt_tail
    assert [r["path"] for r in result.records] == ["/d0", "/d1"]
    # truncate_to removes the torn fragment so appends extend cleanly.
    j2 = MetadataJournal(journal_path)
    j2.truncate_to(result.valid_bytes)
    j2.last_seq = result.records[-1]["seq"]
    j2.append("mkdir", {"path": "/d9"})
    j2.close()
    final = MetadataJournal(journal_path).replay()
    assert not final.corrupt_tail
    assert [r["path"] for r in final.records] == ["/d0", "/d1", "/d9"]


def test_corrupted_crc_stops_replay(journal_path):
    j = MetadataJournal(journal_path)
    j.append("mkdir", {"path": "/a"})
    j.append("mkdir", {"path": "/b"})
    j.close()
    with open(journal_path, "rb") as f:
        lines = f.read().splitlines(keepends=True)
    # Flip one payload byte of the second record; its CRC now lies.
    bad = bytearray(lines[1])
    bad[-5] ^= 0xFF
    with open(journal_path, "wb") as f:
        f.write(lines[0] + bytes(bad))
    result = MetadataJournal(journal_path).replay()
    assert result.corrupt_tail
    assert [r["path"] for r in result.records] == ["/a"]


def test_injected_torn_append_crashes_with_fragment(journal_path):
    plan = DiskFaultPlan.torn_record(2)
    j = MetadataJournal(journal_path, faults=plan)
    j.append("mkdir", {"path": "/a"})
    with pytest.raises(SimulatedCrash):
        j.append("mkdir", {"path": "/b"})
    j.close()
    result = MetadataJournal(journal_path).replay()
    assert result.corrupt_tail
    assert [r["path"] for r in result.records] == ["/a"]
    assert plan.fired("torn") == 1


def test_injected_short_append_reports_success_detected_at_replay(journal_path):
    plan = DiskFaultPlan.short_record(2)
    j = MetadataJournal(journal_path, faults=plan)
    j.append("mkdir", {"path": "/a"})
    # The nasty one: the append claims success but only a prefix landed.
    assert j.append("mkdir", {"path": "/b"}) == 2
    j.close()
    result = MetadataJournal(journal_path).replay()
    assert result.corrupt_tail
    assert [r["path"] for r in result.records] == ["/a"]


def test_injected_errno_surfaces_as_typed_journal_error(journal_path):
    j = MetadataJournal(journal_path,
                        faults=DiskFaultPlan.enospc_at_record(1))
    with pytest.raises(JournalError) as exc:
        j.append("mkdir", {"path": "/a"})
    assert exc.value.errno == errno.ENOSPC
    j2 = MetadataJournal(journal_path, faults=DiskFaultPlan.eio_at_record(1))
    with pytest.raises(JournalError) as exc:
        j2.append("mkdir", {"path": "/a"})
    assert exc.value.errno == errno.EIO


def test_reset_if_quiescent_only_when_no_newer_records(journal_path):
    j = MetadataJournal(journal_path)
    j.append("mkdir", {"path": "/a"})
    j.append("mkdir", {"path": "/b"})
    assert not j.reset_if_quiescent(1)  # record 2 not covered: refuse
    assert j.reset_if_quiescent(2)
    assert j.size_bytes() == 0
    assert j.last_seq == 2  # numbering continues past the truncation


def test_fsync_metrics_published(journal_path):
    reg = MetricsRegistry()
    j = MetadataJournal(journal_path, registry=reg)
    j.append("mkdir", {"path": "/a"})
    j.close()
    assert reg.get("journal_records_total").total() == 1
    hist = reg.get("journal_fsync_seconds")
    assert hist is not None


def test_fsync_amortization_gauge(journal_path):
    # journal_records_per_fsync is the group-commit payoff in one
    # number: records made durable per fsync, 1.0 when every append
    # pays its own disk flush.
    reg = MetricsRegistry()
    j = MetadataJournal(journal_path, registry=reg)
    snap = reg.snapshot()
    assert snap["journal_records_per_fsync"]["series"][""] == 0.0
    for i in range(3):
        j.append("mkdir", {"path": f"/d{i}"})
    snap = reg.snapshot()
    ratio = snap["journal_records_per_fsync"]["series"][""]
    assert ratio == pytest.approx(j.records_appended / j.fsync_count)
    assert ratio >= 1.0
    j.close()


def test_snapshot_atomic_save_load(tmp_path):
    store = SnapshotStore(str(tmp_path / "snap.json"))
    assert store.load() == (None, 0)
    store.save({"used": 42}, seq=7)
    state, seq = store.load()
    assert state == {"used": 42} and seq == 7
    store.save({"used": 43}, seq=9)
    assert store.load() == ({"used": 43}, 9)
    # No temp residue after a completed save.
    assert not os.path.exists(str(tmp_path / "snap.json") + ".tmp")


def test_snapshot_crash_fault(tmp_path):
    plan = DiskFaultPlan([DiskFaultRule(op="snapshot", action="crash")])
    store = SnapshotStore(str(tmp_path / "snap.json"), faults=plan)
    with pytest.raises(SimulatedCrash):
        store.save({"x": 1}, seq=1)
    assert store.load() == (None, 0)  # nothing landed
