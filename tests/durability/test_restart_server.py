"""The acceptance scenario: a live NeST, a hard crash, a restart.

A server with a ``state_dir`` takes real traffic (lots, ACL grants,
puts over Chirp, a replica catalog), is killed mid-PUT, and a fresh
incarnation over the same backend must come back with every guarantee
intact: lot capacities and charges, ACLs, committed files, replica
advertisements -- and the interrupted PUT either absent or complete,
never torn.  Pre-crash NFS handles fail typed (stale), not silently.
"""

from __future__ import annotations

import pytest

from repro.client.chirp import ChirpClient
from repro.client.nfs import NfsClient, NfsError
from repro.nest.auth import CertificateAuthority
from repro.nest.backends import MemoryStore
from repro.nest.config import NestConfig
from repro.nest.server import NestServer
from repro.protocols import nfs
from repro.replica.catalog import ReplicaCatalog


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority("Durability Test CA")


class Collector:
    def __init__(self):
        self.ads = {}

    def advertise(self, ad, ttl=None):
        self.ads[str(ad.eval("Name"))] = ad

    def withdraw(self, name):
        self.ads.pop(name, None)


def make_server(ca, store, state_dir):
    cfg = NestConfig(name="durable-nest", protocols=("chirp", "nfs"),
                     require_lots=True,
                     default_anonymous_lot_bytes=1 << 20,
                     state_dir=str(state_dir), journal_fsync=False)
    srv = NestServer(cfg, store=store, ca=ca)
    srv.start()
    return srv


def seed_workload(srv):
    """Three active lots, ACL grants, committed data over Chirp."""
    storage = srv.storage
    storage.mkdir("admin", "/data")
    storage.acl_set("admin", "/data", "*", "rliwd")
    storage.acl_set("admin", "/data", "alice", "rwmidl")
    for owner in ("alice", "bob", "carol"):
        storage.lots.create_lot(owner, 1 << 16, 3600.0)
    with ChirpClient(*srv.endpoint("chirp")) as client:
        client.put("/data/f", b"payload!" * 125)  # 1000 bytes, anonymous
    put = storage.approve_put("alice", "/data/mine", 300)
    put.stream.write(b"m" * 300)
    put.settle(300)


def lots_by_owner(storage):
    return {lot.owner: lot for lot in storage.lots.lots.values()}


def test_crash_and_restart_restores_guarantees(tmp_path, ca):
    store = MemoryStore()
    state_dir = tmp_path / "state"

    srv1 = make_server(ca, store, state_dir)
    epoch1 = srv1.fhandles.epoch
    seed_workload(srv1)

    collector1 = Collector()
    cat1 = ReplicaCatalog(collector=collector1)
    srv1.attach_catalog(cat1)
    cat1.register("lf-data", "durable-nest", "/data/f",
                  size=1000, state="valid")
    assert "replica::lf-data" in collector1.ads

    # A pre-crash NFS handle, held by a client across the restart.
    with NfsClient(*srv1.endpoint("nfs")) as nfs1:
        old_fh, attrs = nfs1.lookup_path("/data/f")
        assert attrs["size"] == 1000

    # The PUT the crash interrupts: approved and charged, data still
    # in flight when the power goes out.
    torn = srv1.storage.approve_put("alice", "/data/torn", 400)
    torn.stream.write(b"t" * 150)
    srv1.crash()

    srv2 = make_server(ca, store, state_dir)
    try:
        report = srv2.recovery_report
        assert report is not None and report.replayed_records > 0

        # Lot capacities, charges, and the anonymous default lot.
        lots = lots_by_owner(srv2.storage)
        assert set(lots) == {"alice", "bob", "carol", "anonymous"}
        assert all(lots[o].capacity == 1 << 16
                   for o in ("alice", "bob", "carol"))
        assert lots["alice"].charges == {"/data/mine": 300}
        assert lots["anonymous"].charges == {"/data/f": 1000}

        # ACL grants survived.
        entries = dict(srv2.storage.acl_get("admin", "/data"))
        assert entries.get("alice") == "rwmidl"

        # Committed data is intact and served; the interrupted PUT is
        # wholly absent (atomic writer), with its charge released.
        with ChirpClient(*srv2.endpoint("chirp")) as client:
            assert client.get("/data/f") == b"payload!" * 125
            assert client.get("/data/mine") == b"m" * 300
        assert not srv2.storage.exists("/data/torn")
        assert [p["disposition"] for p in report.interrupted_puts] \
            == ["absent"]

        # The replica catalog re-advertises from durable state.
        collector2 = Collector()
        cat2 = ReplicaCatalog(collector=collector2)
        srv2.attach_catalog(cat2)
        assert [r.site for r in cat2.locations("lf-data")] \
            == ["durable-nest"]
        assert "replica::lf-data" in collector2.ads

        # Restart epoch: the old NFS handle fails typed, then a fresh
        # LOOKUP against the new incarnation works.
        assert srv2.fhandles.epoch == epoch1 + 1
        with NfsClient(*srv2.endpoint("nfs")) as nfs2:
            with pytest.raises(NfsError) as exc:
                nfs2.getattr(old_fh)
            assert exc.value.status == nfs.NFSERR_STALE
            fresh_fh, attrs = nfs2.lookup_path("/data/f")
            assert attrs["size"] == 1000
            assert nfs2.getattr(fresh_fh)["size"] == 1000
    finally:
        srv2.stop(drain_timeout=2.0)


def test_clean_restart_replays_nothing(tmp_path, ca):
    store = MemoryStore()
    state_dir = tmp_path / "state"

    srv1 = make_server(ca, store, state_dir)
    seed_workload(srv1)
    srv1.stop(drain_timeout=2.0)  # graceful: final compaction snapshot

    srv2 = make_server(ca, store, state_dir)
    try:
        report = srv2.recovery_report
        # Everything came from the snapshot; the journal was folded.
        assert report.snapshot_seq > 0
        assert report.replayed_records == 0
        assert not report.interrupted_puts
        assert srv2.storage.stat("alice", "/data/mine")["size"] == 300
        lots = lots_by_owner(srv2.storage)
        assert lots["alice"].charges == {"/data/mine": 300}
    finally:
        srv2.stop(drain_timeout=2.0)


def test_restart_without_prior_state_is_fresh(tmp_path, ca):
    srv = make_server(ca, MemoryStore(), tmp_path / "state")
    try:
        report = srv.recovery_report
        assert report.replayed_records == 0
        assert report.snapshot_seq == 0
        assert report.epoch == 1
        # Only the configured anonymous default lot exists.
        assert set(lots_by_owner(srv.storage)) == {"anonymous"}
    finally:
        srv.stop(drain_timeout=2.0)
