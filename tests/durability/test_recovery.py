"""Recovery semantics: snapshot + replay rebuild the managers exactly.

These tests drive the storage manager directly (no sockets) with a
DurabilityManager bound, "crash" by dropping the in-memory objects,
and recover into fresh managers over the same backend.
"""

from __future__ import annotations

import pytest

from repro.durability import DurabilityManager
from repro.nest.backends import LocalFSStore, MemoryStore
from repro.nest.lots import LotState
from repro.nest.storage import StorageError, StorageManager
from repro.obs.metrics import MetricsRegistry
from repro.protocols.common import Status
from repro.replica.catalog import ReplicaCatalog


def make_stack(state_dir, store, clock=None, snapshot_every=0, **kwargs):
    """A storage manager + durability manager over one state_dir."""
    storage = StorageManager(store=store, require_lots=True,
                            capacity_bytes=1 << 20,
                            **({"clock": clock} if clock else {}), **kwargs)
    manager = DurabilityManager(str(state_dir), fsync=False,
                                snapshot_every=snapshot_every)
    report = manager.recover_into(storage)
    return storage, manager, report


def put(storage, user, path, data: bytes):
    ticket = storage.approve_put(user, path, len(data))
    ticket.stream.write(data)
    ticket.settle(len(data))


def test_namespace_acls_groups_lots_survive_restart(tmp_path):
    store = MemoryStore()
    s1, m1, _ = make_stack(tmp_path / "state", store)
    s1.lots.create_lot("alice", 4096, 3600.0)
    s1.add_group("team", {"alice", "bob"})
    s1.mkdir("admin", "/data")
    s1.acl_set("admin", "/data", "group:team", "rwil")
    s1.mkdir("alice", "/data/sub")
    put(s1, "alice", "/data/sub/f", b"x" * 1000)
    s1.rename("alice", "/data/sub/f", "/data/sub/g")
    m1.close(snapshot=False)  # crash: journal only, no final snapshot

    s2, m2, report = make_stack(tmp_path / "state", store)
    assert report.replayed_records > 0
    assert s2.groups == {"team": {"alice", "bob"}}
    assert ("group:team", "rwil") in s2.acl_get("admin", "/data")
    assert s2.stat("alice", "/data/sub/g")["size"] == 1000
    assert not s2.exists("/data/sub/f")
    assert s2.used_bytes == 1000
    lot = next(iter(s2.lots.lots.values()))
    assert lot.owner == "alice" and lot.used == 1000
    assert lot.charges == {"/data/sub/g": 1000}  # charges follow renames
    m2.close()


def test_charges_follow_capacity_after_delete(tmp_path):
    store = MemoryStore()
    s1, m1, _ = make_stack(tmp_path / "state", store)
    s1.lots.create_lot("alice", 4096, 3600.0)
    s1.mkdir("admin", "/d")
    s1.acl_set("admin", "/d", "alice", "rwild")
    put(s1, "alice", "/d/a", b"a" * 100)
    put(s1, "alice", "/d/b", b"b" * 200)
    s1.delete("alice", "/d/a")
    m1.close(snapshot=False)

    s2, m2, _ = make_stack(tmp_path / "state", store)
    lot = next(iter(s2.lots.lots.values()))
    assert lot.used == 200
    assert s2.used_bytes == 200
    m2.close()


def test_snapshot_compaction_truncates_journal(tmp_path):
    store = MemoryStore()
    s1, m1, _ = make_stack(tmp_path / "state", store, snapshot_every=5)
    s1.lots.create_lot("alice", 8192, 3600.0)
    s1.mkdir("admin", "/d")
    s1.acl_set("admin", "/d", "alice", "rwild")
    for i in range(8):
        put(s1, "alice", f"/d/f{i}", b"z" * 10)
    # Compaction fired at least once: the journal holds only the tail.
    assert m1.journal.size_bytes() < 8 * 200
    snap_state, snap_seq = m1.snapshots.load()
    assert snap_state is not None and snap_seq > 0
    m1.close(snapshot=False)

    s2, m2, report = make_stack(tmp_path / "state", store)
    assert report.snapshot_seq > 0
    for i in range(8):
        assert s2.stat("alice", f"/d/f{i}")["size"] == 10
    lot = next(iter(s2.lots.lots.values()))
    assert lot.used == 80
    m2.close()


def test_interrupted_put_new_file_vanishes(tmp_path):
    store = MemoryStore()
    s1, m1, _ = make_stack(tmp_path / "state", store)
    s1.lots.create_lot("alice", 4096, 3600.0)
    s1.mkdir("admin", "/d")
    s1.acl_set("admin", "/d", "alice", "rwil")
    # put_begin journaled; the data never lands, settle never runs.
    ticket = s1.approve_put("alice", "/d/torn", 500)
    ticket.stream.write(b"q" * 120)  # MemoryStore: invisible until close
    m1.close(snapshot=False)

    s2, m2, report = make_stack(tmp_path / "state", store)
    assert [p["disposition"] for p in report.interrupted_puts] == ["absent"]
    assert not s2.exists("/d/torn")
    assert s2.used_bytes == 0
    lot = next(iter(s2.lots.lots.values()))
    assert lot.used == 0  # the charge was released with the file
    m2.close()


def test_interrupted_overwrite_keeps_old_version(tmp_path):
    store = LocalFSStore(str(tmp_path / "disk"))
    s1, m1, _ = make_stack(tmp_path / "state", store)
    s1.lots.create_lot("alice", 4096, 3600.0)
    s1.mkdir("admin", "/d")
    s1.acl_set("admin", "/d", "alice", "rwil")
    put(s1, "alice", "/d/f", b"old!" * 25)  # 100 bytes, committed
    ticket = s1.approve_put("alice", "/d/f", 300)  # overwrite dies mid-way
    ticket.stream.write(b"n" * 40)
    m1.close(snapshot=False)

    s2, m2, report = make_stack(tmp_path / "state", store)
    assert [p["disposition"] for p in report.interrupted_puts] == ["settled"]
    # Old version intact -- never a torn hybrid.
    assert s2.stat("alice", "/d/f")["size"] == 100
    with store.open_read("/d/f") as r:
        assert r.read() == b"old!" * 25
    assert s2.used_bytes == 100
    lot = next(iter(s2.lots.lots.values()))
    assert lot.used == 100
    assert report.swept_temp_files == 1  # the orphaned .nest-tmp
    m2.close()


def test_lot_expired_while_down_comes_back_best_effort(tmp_path):
    now = [1000.0]
    store = MemoryStore()
    s1, m1, _ = make_stack(tmp_path / "state", store, clock=lambda: now[0])
    s1.lots.create_lot("alice", 4096, duration=500.0)  # expires at 1500
    active = s1.lots.list_lots(owner="alice")
    assert active[0]["state"] == "active"
    m1.close(snapshot=False)

    now[0] = 2000.0  # the server was down past the lot's expiry
    s2, m2, report = make_stack(tmp_path / "state", store,
                                clock=lambda: now[0])
    assert report.recovered_lots  # the lot itself came back...
    described = s2.lots.list_lots(owner="alice")
    assert described[0]["state"] == "best_effort"  # ...without its guarantee
    lot = next(iter(s2.lots.lots.values()))
    assert lot.state is LotState.BEST_EFFORT
    m2.close()


def test_lot_renewed_before_crash_stays_active(tmp_path):
    now = [1000.0]
    store = MemoryStore()
    s1, m1, _ = make_stack(tmp_path / "state", store, clock=lambda: now[0])
    lot = s1.lots.create_lot("alice", 4096, duration=500.0)
    s1.lots.renew(lot.lot_id, 5000.0)  # now expires at 6000
    m1.close(snapshot=False)

    now[0] = 2000.0
    s2, m2, _ = make_stack(tmp_path / "state", store, clock=lambda: now[0])
    assert s2.lots.list_lots(owner="alice")[0]["state"] == "active"
    m2.close()


def test_replica_catalog_recovers_and_readvertises(tmp_path):
    store = MemoryStore()
    s1, m1, _ = make_stack(tmp_path / "state", store)
    cat1 = ReplicaCatalog()
    m1.attach_catalog(cat1)
    cat1.register("lf1", "siteA", "/r/lf1", size=10, state="valid")
    cat1.register("lf1", "siteB", "/r/lf1", size=10, state="copying")
    cat1.mark_valid("lf1", "siteB", checksum=123, size=10)
    cat1.register("lf2", "siteA", "/r/lf2", size=20, state="valid")
    cat1.drop("lf2", "siteA")
    m1.close(snapshot=False)

    class Collector:
        def __init__(self):
            self.ads = {}

        def advertise(self, ad, ttl=None):
            self.ads[str(ad.eval("Name"))] = ad

        def withdraw(self, name):
            self.ads.pop(name, None)

    s2, m2, _ = make_stack(tmp_path / "state", store)
    collector = Collector()
    cat2 = ReplicaCatalog(collector=collector)
    applied = m2.attach_catalog(cat2)
    assert applied > 0
    assert cat2.logicals() == ["lf1"]
    states = {r.site: r.state for r in cat2.locations("lf1")}
    assert states == {"siteA": "valid", "siteB": "valid"}
    checksums = {r.site: r.checksum for r in cat2.locations("lf1")}
    assert checksums["siteB"] == 123
    # attach_catalog re-advertised the recovered sets.
    assert "replica::lf1" in collector.ads
    m2.close()


def test_corrupt_journal_tail_recovers_prefix(tmp_path):
    store = MemoryStore()
    s1, m1, _ = make_stack(tmp_path / "state", store)
    s1.mkdir("admin", "/a")
    s1.mkdir("admin", "/b")
    journal_path = m1.journal.path
    m1.close(snapshot=False)
    size = __import__("os").path.getsize(journal_path)
    with open(journal_path, "r+b") as f:
        f.truncate(size - 4)  # tear the /b record

    s2, m2, report = make_stack(tmp_path / "state", store)
    assert report.corrupt_tail
    assert s2.exists("/a") and not s2.exists("/b")
    # The torn fragment was cut; new mutations append cleanly and a
    # further recovery sees consistent history.
    s2.mkdir("admin", "/c")
    m2.close(snapshot=False)
    s3, m3, report3 = make_stack(tmp_path / "state", store)
    assert not report3.corrupt_tail
    assert s3.exists("/a") and s3.exists("/c")
    m3.close()


def test_journal_enospc_degrades_to_typed_storage_error(tmp_path):
    from repro.faults.disk import DiskFaultPlan

    store = MemoryStore()
    storage = StorageManager(store=store, capacity_bytes=1 << 20)
    manager = DurabilityManager(str(tmp_path / "state"), fsync=False,
                                faults=DiskFaultPlan.enospc_at_record(2))
    manager.recover_into(storage)
    storage.mkdir("admin", "/ok")  # record 1: fine
    with pytest.raises(StorageError) as exc:
        storage.mkdir("admin", "/doomed")  # record 2: injected ENOSPC
    assert exc.value.status is Status.NO_SPACE
    manager.close(snapshot=False)


def test_recovery_metrics_exported(tmp_path):
    store = MemoryStore()
    s1 = StorageManager(store=store)
    m1 = DurabilityManager(str(tmp_path / "state"), fsync=False)
    m1.recover_into(s1)
    s1.mkdir("admin", "/a")
    m1.close(snapshot=False)

    reg = MetricsRegistry()
    s2 = StorageManager(store=store)
    m2 = DurabilityManager(str(tmp_path / "state"), fsync=False,
                           registry=reg)
    m2.recover_into(s2)
    assert reg.get("recovery_runs_total").total() == 1
    assert reg.get("recovery_replayed_records_total").total() >= 1
    snap = reg.snapshot()
    assert "recovery_duration_seconds" in snap
    assert "journal_size_bytes" in snap
    m2.close()


def test_epoch_increments_every_recovery(tmp_path):
    store = MemoryStore()
    epochs = []
    for _ in range(3):
        s, m, report = make_stack(tmp_path / "state", store)
        epochs.append(report.epoch)
        m.close(snapshot=False)
    assert epochs == [1, 2, 3]
