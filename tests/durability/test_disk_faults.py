"""Unit tests for the disk-fault plan and the FaultyStore wrapper."""

from __future__ import annotations

import errno

import pytest

from repro.faults.disk import (
    DiskFaultPlan,
    DiskFaultRule,
    FaultyStore,
    SimulatedCrash,
)
from repro.nest.backends import TEMP_SUFFIX, LocalFSStore, MemoryStore


def test_rule_validation():
    with pytest.raises(ValueError):
        DiskFaultRule(op="bogus", action="crash")
    with pytest.raises(ValueError):
        DiskFaultRule(op="append", action="bogus")


def test_plan_matches_by_ordinal_and_caps_firings():
    plan = DiskFaultPlan([DiskFaultRule(op="write", action="eio", at=2)])
    assert plan.check("write") is None          # call 1
    assert plan.check("write") is not None      # call 2: fires
    assert plan.check("write") is None          # call 3: times=1 spent
    assert plan.fired() == 1
    assert plan.events[0].op == "write" and plan.events[0].at == 2


def test_plan_matches_journal_records_by_seq():
    plan = DiskFaultPlan.crash_at_record(17)
    assert plan.check("append", at=16) is None
    rule = plan.check("append", at=17)
    assert rule is not None and rule.action == "crash"
    assert plan.describe()["rules"][0]["fired"] == 1


def test_faulty_store_crash_mid_write_never_publishes(tmp_path):
    plan = DiskFaultPlan.crash_on_store_write(at_call=2)
    store = FaultyStore(LocalFSStore(str(tmp_path)), plan)
    w = store.open_write("/data/f")
    w.write(b"a" * 10)
    with pytest.raises(SimulatedCrash):
        w.write(b"b" * 10)
    # The atomic writer never renamed: the file is absent, only the
    # temp fragment remains, and a sweep removes it.
    assert not store.exists("/data/f")
    inner = store.inner
    assert inner.sweep_temp() == 1
    assert inner.sweep_temp() == 0


def test_faulty_store_crash_preserves_old_version(tmp_path):
    inner = LocalFSStore(str(tmp_path))
    with inner.open_write("/f") as w:
        w.write(b"old-contents")
    plan = DiskFaultPlan.crash_on_store_write(at_call=1)
    store = FaultyStore(inner, plan)
    w = store.open_write("/f")
    with pytest.raises(SimulatedCrash):
        w.write(b"new-contents-that-die")
    with inner.open_read("/f") as r:
        assert r.read() == b"old-contents"  # never torn


def test_faulty_store_eio_and_enospc_are_typed(tmp_path):
    plan = DiskFaultPlan([
        DiskFaultRule(op="write", action="eio", at=1),
        DiskFaultRule(op="write", action="enospc", at=2),
    ])
    store = FaultyStore(MemoryStore(), plan)
    w = store.open_write("/f")
    with pytest.raises(OSError) as exc:
        w.write(b"x")
    assert exc.value.errno == errno.EIO
    with pytest.raises(OSError) as exc:
        w.write(b"x")
    assert exc.value.errno == errno.ENOSPC


def test_faulty_store_short_write_reports_success():
    plan = DiskFaultPlan([
        DiskFaultRule(op="write", action="short", at=1, keep_bytes=3)])
    store = FaultyStore(MemoryStore(), plan)
    w = store.open_write("/f")
    assert w.write(b"0123456789") == 10  # claims all ten bytes
    w.close()
    assert store.size("/f") == 3  # only three landed


def test_clean_plan_is_transparent(tmp_path):
    store = FaultyStore(LocalFSStore(str(tmp_path)), DiskFaultPlan.clean())
    with store.open_write("/f") as w:
        w.write(b"hello")
    assert store.exists("/f") and store.size("/f") == 5
    with store.open_read("/f") as r:
        assert r.read() == b"hello"
    store.delete("/f")
    assert not store.exists("/f")


def test_memory_store_exists():
    store = MemoryStore()
    assert not store.exists("/f")
    with store.open_write("/f") as w:
        w.write(b"")
    assert store.exists("/f")  # even empty files exist


def test_atomic_writer_append_mode(tmp_path):
    store = LocalFSStore(str(tmp_path))
    with store.open_write("/f") as w:
        w.write(b"one")
    with store.open_write("/f", append=True) as w:
        w.write(b"two")
    with store.open_read("/f") as r:
        assert r.read() == b"onetwo"
    assert store.sweep_temp() == 0


def test_atomic_writer_unclosed_leaves_no_file(tmp_path):
    store = LocalFSStore(str(tmp_path))
    w = store.open_write("/g")
    w.write(b"half-finished")
    # No close: simulates a killed process.  Nothing published.
    assert not store.exists("/g")
    assert store.size("/g") == 0
    files = list((tmp_path).iterdir())
    assert any(f.name.endswith(TEMP_SUFFIX) for f in files)
    assert store.sweep_temp() == 1
