"""Property-style crash sweep: kill the appliance at *every* journal
boundary of a scripted workload, recover, and check the invariants.

Two faults per boundary -- a clean crash just before the record lands,
and a torn write that leaves half the record on disk -- so a workload
of N records yields 2N crash points (the workload below emits 25+,
for the required 50+ points).
"""

from __future__ import annotations

from repro.durability import DurabilityManager
from repro.faults.disk import DiskFaultPlan, SimulatedCrash
from repro.nest.backends import MemoryStore
from repro.nest.storage import DirNode, FileNode, StorageManager

CAPACITY = 1 << 20


def put(storage, user, path, data: bytes) -> None:
    ticket = storage.approve_put(user, path, len(data))
    ticket.stream.write(data)
    ticket.settle(len(data))


def run_workload(s: StorageManager) -> None:
    """A fixed script touching every journaled mutation type."""
    s.lots.create_lot("alice", 1 << 16, 3600.0)
    s.lots.create_lot("bob", 1 << 16, 3600.0)
    lot3 = s.lots.create_lot("carol", 1 << 16, 3600.0)
    s.add_group("team", {"alice", "bob"})
    s.mkdir("admin", "/a")
    s.acl_set("admin", "/a", "group:team", "rwmidl")
    s.mkdir("admin", "/b")
    s.acl_set("admin", "/b", "carol", "rwmidl")
    put(s, "alice", "/a/one", b"1" * 100)
    put(s, "bob", "/a/two", b"2" * 200)
    put(s, "carol", "/b/three", b"3" * 300)
    s.rename("alice", "/a/one", "/a/uno")
    s.delete("bob", "/a/two")
    s.lots.renew(lot3.lot_id, 7200.0)
    s.lots.attach(lot3.lot_id, "/b")
    put(s, "carol", "/b/four", b"4" * 50)
    put(s, "alice", "/a/five", b"5" * 150)


def boot(state_dir, store, faults=None):
    storage = StorageManager(store=store, require_lots=True,
                             capacity_bytes=CAPACITY)
    manager = DurabilityManager(str(state_dir), fsync=False, faults=faults)
    report = manager.recover_into(storage)
    return storage, manager, report


def crash_workload(state_dir, store, plan) -> bool:
    """Run the workload under ``plan``; True when the crash fired."""
    storage, manager, _ = boot(state_dir, store, faults=plan)
    try:
        run_workload(storage)
    except SimulatedCrash:
        return True
    finally:
        # A SIGKILL persists nothing further: close the journal file
        # descriptor only, never a shutdown snapshot.
        try:
            manager.journal.close()
        except OSError:
            pass
    return False


def tree_sizes(storage) -> dict[str, int]:
    sizes: dict[str, int] = {}

    def walk(dirnode, prefix):
        for name, child in dirnode.children.items():
            path = prefix.rstrip("/") + "/" + name
            if isinstance(child, FileNode):
                sizes[path] = child.size
            elif isinstance(child, DirNode):
                walk(child, path)

    walk(storage.root, "")
    return sizes


def check_invariants(storage) -> None:
    sizes = tree_sizes(storage)
    # 1. Global accounting matches the namespace exactly.
    assert storage.used_bytes == sum(sizes.values())
    # 2. Every lot charge points at a real file and never exceeds it.
    totals: dict[str, int] = {}
    for lot in storage.lots.lots.values():
        assert lot.used == sum(lot.charges.values())
        for path, nbytes in lot.charges.items():
            assert nbytes > 0
            totals[path] = totals.get(path, 0) + nbytes
    for path, total in totals.items():
        assert path in sizes, f"charge for missing file {path}"
        assert total <= sizes[path], f"overcharge on {path}"


def workload_record_count(tmp_path) -> int:
    store = MemoryStore()
    storage, manager, _ = boot(tmp_path / "probe", store)
    run_workload(storage)
    n = manager.journal.last_seq
    manager.close(snapshot=False)
    return n


def sweep(tmp_path, make_plan) -> int:
    """Crash at every record boundary; returns the number of points."""
    total = workload_record_count(tmp_path)
    assert total >= 25, f"workload too small for the sweep: {total}"
    for k in range(1, total + 1):
        state_dir = tmp_path / f"state{k}"
        store = MemoryStore()
        crashed = crash_workload(state_dir, store, make_plan(k))
        assert crashed, f"fault at record {k} never fired"

        s2, m2, report = boot(state_dir, store)
        check_invariants(s2)
        # Determinism: recovering the same state twice gives the same
        # appliance, byte for byte.
        s3, m3, _ = boot(state_dir, store)
        assert s2.serialize_state() == s3.serialize_state()
        # The recovered appliance still takes writes.
        s3.mkdir("admin", "/post-crash")
        put_user = "alice" if "alice" in {
            l.owner for l in s3.lots.lots.values()} else None
        if put_user:
            s3.acl_set("admin", "/post-crash", put_user, "rwild")
            put(s3, put_user, "/post-crash/ok", b"k" * 10)
            check_invariants(s3)
        m2.close(snapshot=False)
        m3.close()
    return total


def test_crash_at_every_record_boundary(tmp_path):
    n = sweep(tmp_path, DiskFaultPlan.crash_at_record)
    assert n >= 25


def test_torn_write_at_every_record_boundary(tmp_path):
    n = sweep(tmp_path, DiskFaultPlan.torn_record)
    assert n >= 25


def test_sweep_covers_fifty_points(tmp_path):
    # The acceptance bar: both sweeps together cover >= 50 boundaries.
    assert 2 * workload_record_count(tmp_path) >= 50
