"""Unit tests for the ClassAd tokenizer."""

import pytest

from repro.classads.lexer import LexError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)][:-1]  # drop EOF


class TestBasicTokens:
    def test_integers(self):
        assert values("1 42 007") == [1, 42, 7]

    def test_reals(self):
        assert values("1.5 0.25") == [1.5, 0.25]

    def test_scientific_notation(self):
        assert values("1e3 2.5e-2") == [1000.0, 0.025]

    def test_integer_then_dot_is_not_real_without_digits(self):
        # "1.foo" must lex as INT, '.', IDENT (attribute selection).
        toks = tokenize("1 . foo")
        assert [t.kind for t in toks] == ["INT", "OP", "IDENT", "EOF"]

    def test_strings(self):
        assert values('"hello" "a b"') == ["hello", "a b"]

    def test_string_escapes(self):
        assert values(r'"a\"b" "c\\d" "e\nf"') == ['a"b', "c\\d", "e\nf"]

    def test_identifiers(self):
        assert values("foo Bar_9 _x") == ["foo", "Bar_9", "_x"]

    def test_operators_longest_match(self):
        assert values("=?= =!= <= >= == != && || << >>") == [
            "=?=", "=!=", "<=", ">=", "==", "!=", "&&", "||", "<<", ">>",
        ]

    def test_single_char_operators(self):
        assert values("( ) [ ] { } , ; ? : . + - * / % ! ~ < > = & | ^") == list(
            "()[]{},;?:.+-*/%!~<>=&|^"
        )


class TestWhitespaceAndComments:
    def test_whitespace_ignored(self):
        assert kinds("  1\t2\n3 ") == ["INT", "INT", "INT", "EOF"]

    def test_line_comment(self):
        assert values("1 // comment\n2") == [1, 2]

    def test_block_comment(self):
        assert values("1 /* x */ 2") == [1, 2]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("1 /* oops")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_eof_token_present(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "EOF"

    def test_positions_recorded(self):
        toks = tokenize("ab cd")
        assert toks[0].pos == 0
        assert toks[1].pos == 3
