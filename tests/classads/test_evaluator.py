"""Unit tests for ClassAd evaluation semantics."""

import pytest

from repro.classads import ClassAd, parse, parse_expression
from repro.classads.ast import ERROR, UNDEFINED, Error, Undefined
from repro.classads.evaluator import EvalContext, evaluate


def ev(text, my=None, other=None):
    return evaluate(parse_expression(text), EvalContext(my=my, other=other))


class TestArithmetic:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2", 3),
        ("7 - 10", -3),
        ("6 * 7", 42),
        ("7 / 2", 3),          # integer division truncates toward zero
        ("-7 / 2", -3),
        ("7.0 / 2", 3.5),
        ("7 % 3", 1),
        ("-7 % 3", -1),
        ("2 * 3 + 4", 10),
        ("1 << 4", 16),
        ("255 & 15", 15),
        ("8 | 1", 9),
        ("5 ^ 1", 4),
    ])
    def test_numeric(self, expr, expected):
        assert ev(expr) == expected

    def test_division_by_zero_is_error(self):
        assert isinstance(ev("1 / 0"), Error)
        assert isinstance(ev("1 % 0"), Error)

    def test_string_concatenation_with_plus(self):
        assert ev('"ab" + "cd"') == "abcd"

    def test_type_mismatch_is_error(self):
        assert isinstance(ev('1 + "a"'), Error)
        assert isinstance(ev("true * 2"), Error)


class TestComparison:
    def test_numeric_comparison(self):
        assert ev("3 < 4") is True
        assert ev("3 >= 4") is False
        assert ev("3 == 3.0") is True

    def test_string_comparison_case_insensitive(self):
        assert ev('"ABC" == "abc"') is True
        assert ev('"abc" < "abd"') is True

    def test_cross_type_comparison_is_error(self):
        assert isinstance(ev('1 == "1"'), Error)

    def test_bool_equality_only(self):
        assert ev("true == true") is True
        assert isinstance(ev("true < false"), Error)


class TestThreeValuedLogic:
    def test_undefined_attribute(self):
        assert isinstance(ev("NoSuchThing"), Undefined)

    def test_false_and_undefined_is_false(self):
        assert ev("false && NoSuch") is False

    def test_true_or_undefined_is_true(self):
        assert ev("true || NoSuch") is True

    def test_true_and_undefined_is_undefined(self):
        assert isinstance(ev("true && NoSuch"), Undefined)

    def test_undefined_propagates_through_arithmetic(self):
        assert isinstance(ev("NoSuch + 1"), Undefined)

    def test_error_beats_undefined_in_strict_ops(self):
        assert isinstance(ev("(1/0) + NoSuch"), Error)

    def test_meta_equality(self):
        assert ev("undefined =?= undefined") is True
        assert ev("undefined =?= 1") is False
        assert ev("undefined =!= 1") is True
        assert ev("error =?= error") is True
        assert ev("1 =?= 1") is True
        assert ev('1 =?= "1"') is False
        assert ev("1 =?= true") is False

    def test_not_of_non_bool_is_error(self):
        assert isinstance(ev("!3"), Error)

    def test_ternary_on_undefined(self):
        assert isinstance(ev("NoSuch ? 1 : 2"), Undefined)


class TestAttributeResolution:
    def test_my_scope(self):
        ad = parse("[ X = 10; Y = my.X + 1 ]")
        assert ad.eval("Y") == 11

    def test_bare_name_falls_through_to_other(self):
        mine = parse("[ Req = Memory > 4 ]")
        other = parse("[ Memory = 8 ]")
        assert ev("Req", my=mine, other=other) is True

    def test_other_scope(self):
        mine = parse("[ X = 1 ]")
        other = parse("[ X = 2 ]")
        assert ev("other.X", my=mine, other=other) == 2
        assert ev("my.X", my=mine, other=other) == 1

    def test_other_evaluates_in_others_scope(self):
        # other.Z references other's own Y, not mine.
        mine = parse("[ Y = 100 ]")
        other = parse("[ Y = 5; Z = my.Y * 2 ]")
        assert ev("other.Z", my=mine, other=other) == 10

    def test_circular_reference_is_error(self):
        ad = parse("[ A = B; B = A ]")
        assert isinstance(ad.eval("A"), Error)

    def test_self_reference_is_error(self):
        ad = parse("[ A = A + 1 ]")
        assert isinstance(ad.eval("A"), Error)

    def test_record_selection(self):
        ad = parse("[ R = [ X = 4 ]; Y = R.X ]")
        assert ad.eval("Y") == 4


class TestListsAndSubscripts:
    def test_subscript(self):
        assert ev("{10, 20, 30}[1]") == 20

    def test_subscript_out_of_range_is_error(self):
        assert isinstance(ev("{1}[5]"), Error)

    def test_member(self):
        assert ev("member(2, {1, 2, 3})") is True
        assert ev("member(9, {1, 2, 3})") is False

    def test_member_string_case_insensitive(self):
        assert ev('member("A", {"a", "b"})') is True

    def test_member_of_non_list_is_error(self):
        assert isinstance(ev("member(1, 2)"), Error)


class TestBuiltins:
    @pytest.mark.parametrize("expr,expected", [
        ('strcat("a", "b")', "ab"),
        ('strcat("n=", 4)', "n=4"),
        ('tolower("AbC")', "abc"),
        ('toupper("AbC")', "ABC"),
        ('size("hello")', 5),
        ("size({1, 2})", 2),
        ('int("42")', 42),
        ("int(3.9)", 3),
        ('real("2.5")', 2.5),
        ("floor(3.7)", 3),
        ("ceiling(3.2)", 4),
        ("round(3.5)", 4),
        ("ifthenelse(true, 1, 2)", 1),
        ("ifthenelse(false, 1, 2)", 2),
        ("isundefined(NoSuch)", True),
        ("isundefined(1)", False),
        ("iserror(1/0)", True),
    ])
    def test_builtin(self, expr, expected):
        assert ev(expr) == expected

    def test_unknown_function_is_error(self):
        assert isinstance(ev("nosuchfn(1)"), Error)

    def test_builtin_propagates_undefined(self):
        assert isinstance(ev("tolower(NoSuch)"), Undefined)


class TestClassAdContainer:
    def test_python_value_assignment(self):
        ad = ClassAd()
        ad["N"] = 5
        ad["S"] = "x"
        ad["L"] = [1, 2]
        assert ad.eval("N") == 5
        assert ad.eval("S") == "x"
        assert list(ad.eval("L")) == [1, 2]

    def test_unsupported_value_rejected(self):
        ad = ClassAd()
        with pytest.raises(TypeError):
            ad["bad"] = object()

    def test_copy_is_shallow_but_independent(self):
        ad = parse("[ A = 1 ]")
        dup = ad.copy()
        dup["A"] = 2
        assert ad.eval("A") == 1 and dup.eval("A") == 2

    def test_delete(self):
        ad = parse("[ A = 1 ]")
        del ad["a"]
        assert "A" not in ad
        assert isinstance(ad.eval("A"), Undefined)
