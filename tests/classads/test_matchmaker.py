"""Unit tests for ClassAd matchmaking and collections."""

from repro.classads import (
    ClassAd,
    ClassAdCollection,
    MatchMaker,
    parse,
    symmetric_match,
    match_rank,
)
from repro.classads.matchmaker import requirements_met


def storage_ad(name, free, protocols=("chirp",)):
    ad = parse(
        '[ Type = "Storage"; Requirements = other.RequestedSpace <= my.FreeSpace ]'
    )
    ad["Name"] = name
    ad["FreeSpace"] = free
    ad["Protocols"] = list(protocols)
    return ad


def request_ad(space, rank="other.FreeSpace"):
    ad = parse('[ Type = "Request"; Requirements = other.Type == "Storage" ]')
    ad["RequestedSpace"] = space
    from repro.classads.parser import parse_expression

    ad["Rank"] = parse_expression(rank)
    return ad


class TestRequirements:
    def test_missing_requirements_accepts_anything(self):
        assert requirements_met(ClassAd({"A": 1}), ClassAd())

    def test_undefined_requirements_do_not_match(self):
        ad = parse("[ Requirements = other.Nope ]")
        assert not requirements_met(ad, ClassAd())

    def test_non_bool_requirements_do_not_match(self):
        ad = parse("[ Requirements = 42 ]")
        assert not requirements_met(ad, ClassAd())

    def test_symmetric_match_requires_both_sides(self):
        server = storage_ad("s", free=100)
        ok = request_ad(50)
        too_big = request_ad(500)
        assert symmetric_match(server, ok)
        assert not symmetric_match(server, too_big)


class TestRank:
    def test_rank_numeric(self):
        req = request_ad(10)
        assert match_rank(req, storage_ad("s", free=7)) == 7.0

    def test_missing_rank_is_zero(self):
        ad = ClassAd()
        assert match_rank(ad, storage_ad("s", free=7)) == 0.0

    def test_bool_rank_maps_to_binary(self):
        req = parse("[ Rank = other.FreeSpace > 5 ]")
        assert match_rank(req, storage_ad("s", free=7)) == 1.0
        assert match_rank(req, storage_ad("s", free=2)) == 0.0


class TestMatchMaker:
    def test_best_match_prefers_higher_rank(self):
        mm = MatchMaker()
        small = storage_ad("small", free=10)
        big = storage_ad("big", free=1000)
        mm.add(small)
        mm.add(big)
        best = mm.best_match(request_ad(5))
        assert best is big

    def test_no_match_returns_none(self):
        mm = MatchMaker([storage_ad("s", free=1)])
        assert mm.best_match(request_ad(100)) is None

    def test_matches_sorted_by_rank(self):
        mm = MatchMaker()
        for free in (10, 1000, 100):
            mm.add(storage_ad(f"s{free}", free=free))
        ranked = mm.matches(request_ad(5))
        assert [m.rank for m in ranked] == [1000.0, 100.0, 10.0]

    def test_remove(self):
        mm = MatchMaker()
        ad = storage_ad("s", free=10)
        mm.add(ad)
        mm.remove(ad)
        assert len(mm) == 0


class TestCollections:
    def entries(self):
        return [
            ClassAd({"Type": "AclEntry", "Subject": "alice", "Rights": "rl"}),
            ClassAd({"Type": "AclEntry", "Subject": "bob", "Rights": "rwmidla"}),
            ClassAd({"Type": "Other"}),
        ]

    def test_query_constraint(self):
        coll = ClassAdCollection(self.entries())
        acl = coll.query('Type == "AclEntry"')
        assert len(acl) == 2

    def test_query_with_other_scope(self):
        coll = ClassAdCollection(self.entries())
        client = ClassAd({"User": "alice"})
        mine = coll.query("Subject == other.User", other=client)
        assert len(mine) == 1

    def test_first(self):
        coll = ClassAdCollection(self.entries())
        found = coll.first('Subject == "bob"')
        assert found is not None and found.eval("Rights") == "rwmidla"
        assert coll.first('Subject == "carol"') is None

    def test_remove_if(self):
        coll = ClassAdCollection(self.entries())
        removed = coll.remove_if(lambda ad: "subject" in ad)
        assert removed == 2 and len(coll) == 1

    def test_remove_identity(self):
        items = self.entries()
        coll = ClassAdCollection(items)
        assert coll.remove(items[0]) is True
        assert coll.remove(items[0]) is False
