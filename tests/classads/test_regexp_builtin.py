"""Tests for the regexp() builtin (used in ACL/discovery constraints)."""

from repro.classads import parse, parse_expression
from repro.classads.ast import Error, Undefined
from repro.classads.evaluator import EvalContext, evaluate


def ev(text, my=None):
    return evaluate(parse_expression(text), EvalContext(my=my))


class TestRegexp:
    def test_match(self):
        assert ev('regexp("^ab+c$", "abbbc")') is True

    def test_no_match(self):
        assert ev('regexp("^x", "abc")') is False

    def test_search_semantics(self):
        assert ev('regexp("b+", "aabbaa")') is True

    def test_bad_pattern_is_error(self):
        assert isinstance(ev('regexp("(", "x")'), Error)

    def test_non_string_is_error(self):
        assert isinstance(ev('regexp(1, "x")'), Error)

    def test_undefined_propagates(self):
        assert isinstance(ev('regexp("x", NoSuch)'), Undefined)

    def test_in_requirements(self):
        # The intended use: subject-pattern constraints in policy ads.
        ad = parse('[ Subject = "/O=Grid/CN=alice"; '
                   'Trusted = regexp("^/O=Grid/", my.Subject) ]')
        assert ad.eval("Trusted") is True
