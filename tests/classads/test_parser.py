"""Unit tests for the ClassAd parser."""

import pytest

from repro.classads import ClassAd, parse, parse_expression, ParseError
from repro.classads.ast import (
    AttrRef,
    BinaryOp,
    FuncCall,
    ListExpr,
    Literal,
    Select,
    Subscript,
    Ternary,
    UnaryOp,
)


class TestClassAdParsing:
    def test_empty_ad(self):
        assert len(parse("[]")) == 0

    def test_simple_attributes(self):
        ad = parse('[ A = 1; B = "two"; C = true ]')
        assert ad.eval("A") == 1
        assert ad.eval("B") == "two"
        assert ad.eval("C") is True

    def test_trailing_semicolon_allowed(self):
        ad = parse("[ A = 1; ]")
        assert ad.eval("A") == 1

    def test_case_insensitive_names(self):
        ad = parse("[ FooBar = 7 ]")
        assert ad.eval("foobar") == 7
        assert "FOOBAR" in ad

    def test_original_case_preserved_in_iteration(self):
        ad = parse("[ FooBar = 7 ]")
        assert list(ad) == ["FooBar"]

    def test_nested_record(self):
        ad = parse("[ Inner = [ X = 3 ] ]")
        inner = ad.eval("Inner")
        assert isinstance(inner, ClassAd)
        assert inner.eval("X") == 3

    def test_missing_equals_rejected(self):
        with pytest.raises(ParseError):
            parse("[ A 1 ]")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("[ A = 1 ] junk")


class TestExpressionParsing:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, BinaryOp) and e.op == "+"
        assert isinstance(e.right, BinaryOp) and e.right.op == "*"

    def test_parentheses_override(self):
        e = parse_expression("(1 + 2) * 3")
        assert isinstance(e, BinaryOp) and e.op == "*"

    def test_comparison_below_logic(self):
        e = parse_expression("a < b && c > d")
        assert isinstance(e, BinaryOp) and e.op == "&&"

    def test_ternary(self):
        e = parse_expression("a ? 1 : 2")
        assert isinstance(e, Ternary)

    def test_nested_ternary_right_associates(self):
        e = parse_expression("a ? 1 : b ? 2 : 3")
        assert isinstance(e, Ternary)
        assert isinstance(e.otherwise, Ternary)

    def test_unary_minus(self):
        e = parse_expression("-x")
        assert isinstance(e, UnaryOp) and e.op == "-"

    def test_function_call(self):
        e = parse_expression('strcat("a", "b", "c")')
        assert isinstance(e, FuncCall)
        assert e.name == "strcat" and len(e.args) == 3

    def test_zero_arg_function(self):
        e = parse_expression("foo()")
        assert isinstance(e, FuncCall) and e.args == ()

    def test_list_literal(self):
        e = parse_expression("{1, 2, 3}")
        assert isinstance(e, ListExpr) and len(e.items) == 3

    def test_empty_list(self):
        e = parse_expression("{}")
        assert isinstance(e, ListExpr) and e.items == ()

    def test_subscript(self):
        e = parse_expression("xs[0]")
        assert isinstance(e, Subscript)

    def test_scoped_references(self):
        assert parse_expression("other.Memory") == AttrRef("Memory", scope="other")
        assert parse_expression("TARGET.Memory") == AttrRef("Memory", scope="other")
        assert parse_expression("my.Disk") == AttrRef("Disk", scope="my")
        assert parse_expression("self.Disk") == AttrRef("Disk", scope="my")

    def test_bare_reference(self):
        assert parse_expression("Memory") == AttrRef("Memory")

    def test_selection_on_record(self):
        e = parse_expression("[a = 1].a")
        assert isinstance(e, Select)

    def test_keyword_literals(self):
        assert parse_expression("true") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)
        assert repr(parse_expression("undefined").value) == "undefined"
        assert repr(parse_expression("ERROR").value) == "error"

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("(1 + 2")


class TestRoundTrip:
    CASES = [
        '[ A = 1; B = "two"; C = true; D = undefined ]',
        "[ Requirements = other.X > my.Y && member(z, {1, 2, 3}) ]",
        "[ E = (1 + 2) * 3 % 4; F = a ? b : c ]",
        '[ N = [ Inner = "deep" ] ]',
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_external_repr_round_trips(self, text):
        once = parse(text)
        twice = parse(once.external_repr())
        assert once.external_repr() == twice.external_repr()
