"""Unit tests for the decentralized autoscaler (fake health/replicator)."""

from dataclasses import dataclass, field

import pytest

from repro.replica.replicator import ReplicationError
from repro.tier.autoscale import AutoScaler
from repro.tier.heat import HeatTracker


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class FakeHealth:
    """Configurable health snapshot."""

    def __init__(self):
        self.requests = 0
        self.queue_depth = 0.0
        self.error_rate = 0.0

    def snapshot(self):
        return {
            "throughput_bps": 0.0,
            "requests": {"chirp": self.requests},
            "errors": 0,
            "error_rates": {"chirp": self.error_rate},
            "probes": {"queue_depth": self.queue_depth},
        }


class FakeSlo:
    def __init__(self, bad=False):
        self.bad = bad

    def degraded(self):
        return self.bad


@dataclass
class FakeReport:
    ok: bool = True
    target: str = "peer-1"


@dataclass
class FakeCatalog:
    valid: dict = field(default_factory=dict)
    registered: list = field(default_factory=list)

    def valid_locations(self, logical):
        return list(self.valid.get(logical, []))

    def register(self, logical, site, path, **kw):
        self.registered.append((logical, site, path))

    def mark_valid(self, logical, site, **kw):
        self.valid.setdefault(logical, []).append(site)


class FakeReplicator:
    def __init__(self):
        self.catalog = FakeCatalog()
        self.calls = []
        self.fail = False

    def path_for(self, logical):
        return f"/replicas/{logical}"

    def replicate(self, logical, k=None):
        self.calls.append((logical, k))
        if self.fail:
            raise ReplicationError("no peers")
        self.catalog.valid.setdefault(logical, []).append("peer-1")
        return [FakeReport()]


@pytest.fixture
def rig():
    clock = Clock()
    health = FakeHealth()
    heat = HeatTracker(halflife=60.0, clock=clock)
    replicator = FakeReplicator()
    scaler = AutoScaler(
        "nest-0", health, heat, replicator,
        queue_high=4.0, error_high=0.05, rate_high=50.0,
        max_files=3, max_replicas=3, budget=2, window=60.0,
        cooldown=10.0, hysteresis=2, clock=clock)
    return clock, health, heat, replicator, scaler


def make_hot(heat, replicator, logical="hot.dat", site="nest-0"):
    heat.record(f"/replicas/{logical}", nbytes=1024)
    replicator.catalog.valid[logical] = [site]


class TestSignals:
    def test_idle_below_thresholds(self, rig):
        _clock, _health, _heat, _replicator, scaler = rig
        report = scaler.tick()
        assert report["action"] == "idle"
        assert report["pressure"] == 0

    def test_request_rate_from_deltas(self, rig):
        clock, health, _heat, _replicator, scaler = rig
        scaler.tick()
        health.requests = 100
        clock.now = 2.0
        sig = scaler.signals()
        assert sig["request_rate"] == pytest.approx(50.0)

    def test_overload_predicates(self, rig):
        _clock, _health, _heat, _replicator, scaler = rig
        base = {"queue_depth": 0.0, "error_rate": 0.0,
                "request_rate": 0.0, "slo_degraded": False}
        assert not scaler.overloaded(base)
        assert scaler.overloaded({**base, "queue_depth": 4.0})
        assert scaler.overloaded({**base, "error_rate": 0.06})
        assert scaler.overloaded({**base, "request_rate": 80.0})
        assert scaler.overloaded({**base, "slo_degraded": True})

    def test_slo_engine_feeds_signal(self, rig):
        _clock, health, heat, replicator, _scaler = rig
        scaler = AutoScaler("nest-0", health, heat, replicator,
                            slo=FakeSlo(bad=True), hysteresis=1)
        assert scaler.signals()["slo_degraded"]


class TestHysteresisAndCooldown:
    def test_one_spike_only_watches(self, rig):
        _clock, health, heat, replicator, scaler = rig
        make_hot(heat, replicator)
        health.queue_depth = 10.0
        report = scaler.tick()
        assert report["action"] == "watching"
        assert replicator.calls == []

    def test_persistent_overload_replicates(self, rig):
        _clock, health, heat, replicator, scaler = rig
        make_hot(heat, replicator)
        health.queue_depth = 10.0
        scaler.tick()
        report = scaler.tick()
        assert report["action"] == "replicated"
        assert report["replicated"][0]["logical"] == "hot.dat"
        assert replicator.calls == [("hot.dat", 2)]

    def test_idle_resets_pressure(self, rig):
        _clock, health, heat, replicator, scaler = rig
        make_hot(heat, replicator)
        health.queue_depth = 10.0
        scaler.tick()
        health.queue_depth = 0.0
        scaler.tick()  # back to calm
        health.queue_depth = 10.0
        assert scaler.tick()["action"] == "watching"  # starts over

    def test_cooldown_after_action(self, rig):
        clock, health, heat, replicator, scaler = rig
        make_hot(heat, replicator)
        health.queue_depth = 10.0
        scaler.tick()
        scaler.tick()  # replicates, cooldown until now+10
        clock.now = 5.0
        assert scaler.tick()["action"] == "cooldown"
        clock.now = 11.0
        assert scaler.tick()["action"] == "replicated"


class TestBudget:
    def test_budget_caps_actions_per_window(self, rig):
        clock, health, heat, replicator, scaler = rig
        make_hot(heat, replicator)
        health.queue_depth = 10.0
        scaler.max_replicas = 10  # never hit the per-file ceiling
        scaler.tick()
        scaler.tick()            # action 1
        clock.now = 11.0
        scaler.tick()            # action 2 (budget=2 now spent)
        clock.now = 22.0
        assert scaler.tick()["action"] == "budget"
        clock.now = 75.0         # first action left the 60s window
        assert scaler.tick()["action"] == "replicated"

    def test_validation(self, rig):
        _clock, health, heat, replicator, _scaler = rig
        with pytest.raises(ValueError):
            AutoScaler("n", health, heat, replicator, hysteresis=0)
        with pytest.raises(ValueError):
            AutoScaler("n", health, heat, replicator, budget=0)


class TestScaleOut:
    def test_hottest_logicals_strips_prefix(self, rig):
        _clock, _health, heat, _replicator, scaler = rig
        heat.record("/replicas/a.dat")
        heat.record("/replicas/nested/b.dat")  # not a logical name
        heat.record("/user/c.dat")             # outside the prefix
        assert [l for l, _ in scaler.hottest_logicals()] == ["a.dat"]

    def test_seeds_catalog_from_local_lookup(self, rig):
        _clock, health, heat, replicator, _scaler = rig
        scaler = AutoScaler(
            "nest-0", health, heat, replicator, hysteresis=1,
            local_lookup=lambda logical: (1024, 0xABCD))
        heat.record("/replicas/local.dat")
        health.queue_depth = 10.0
        report = scaler.tick()
        assert report["action"] == "replicated"
        assert replicator.catalog.registered == [
            ("local.dat", "nest-0", "/replicas/local.dat")]

    def test_uncataloged_without_lookup_skipped(self, rig):
        _clock, health, heat, replicator, scaler = rig
        heat.record("/replicas/mystery.dat")
        health.queue_depth = 10.0
        scaler.tick()
        assert scaler.tick()["action"] == "no_candidates"

    def test_replica_ceiling(self, rig):
        _clock, health, heat, replicator, scaler = rig
        make_hot(heat, replicator)
        replicator.catalog.valid["hot.dat"] = ["a", "b", "c"]  # at ceiling
        health.queue_depth = 10.0
        scaler.tick()
        assert scaler.tick()["action"] == "no_candidates"
        assert replicator.calls == []

    def test_replication_errors_survive_the_tick(self, rig):
        _clock, health, heat, replicator, scaler = rig
        make_hot(heat, replicator)
        replicator.fail = True
        health.queue_depth = 10.0
        scaler.tick()
        assert scaler.tick()["action"] == "no_candidates"

    def test_describe(self, rig):
        _clock, _health, _heat, _replicator, scaler = rig
        doc = scaler.describe()
        assert doc["node"] == "nest-0"
        assert doc["thresholds"]["queue_high"] == 4.0
