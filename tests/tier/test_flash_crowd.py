"""Acceptance: a skewed flash crowd on three hot files is absorbed by
demand-driven replication to peers with zero client-visible errors,
while cold files migrate down and recall on miss on the same appliance."""

import pytest

from repro.tier.demo import run_tier_demo


@pytest.fixture(scope="module")
def record(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("tier-demo")
    return run_tier_demo(
        sites=3,
        hot_files=3,
        hot_bytes=16 * 1024,
        cold_files=2,
        cold_bytes=32 * 1024,
        crowd_threads=4,
        crowd_reads=8,
        tmp_dir=str(tmp),
    )


def test_zero_client_visible_errors(record):
    assert record["reads"] > 0
    assert record["read_errors"] == 0


def test_hot_files_replicated_to_peers(record):
    assert record["absorbed"], record["replica_spread"]
    assert all(n >= 2 for n in record["replica_spread"].values())


def test_cold_files_migrated_and_recalled(record):
    assert record["migrated_files"] == 2
    assert record["migrated_bytes"] == 2 * 32 * 1024
    assert record["recalled_bytes"] == 2 * 32 * 1024
    assert all(state == "hot" for state in record["cold_residency"].values())


def test_residency_survives_mid_migration_crash(record):
    assert record["crash_points"] >= 10
    assert record["migration_crash_survived"], record.get("crash_failures")


def test_record_is_benchmark_ready(record):
    assert record["ok"]
    assert record["benchmark"] == "tier_flash_crowd_demo"
    assert record["migrate_mbps"] > 0
    assert record["recall_mbps"] > 0
