"""Live-server tiering: demote over the wire, recall on miss, and
residency surviving both a graceful restart and a crash."""

import pytest

from repro.client.chirp import ChirpClient
from repro.nest.config import NestConfig
from repro.nest.server import NestServer
from repro.tier.store import COLD, HOT


def tiered_config(tmp_path, name="tiered"):
    return NestConfig(
        name=name,
        protocols=("chirp",),
        tiering=True,
        tier_scan_interval=0.0,   # scans driven by hand
        tier_demote_after=0.0,    # age gate off: heat decides
        state_dir=str(tmp_path / "state"),
        tier_cold_dir=str(tmp_path / "cold"),
    )


def chirp(server):
    host, port = server.endpoint("chirp")
    return ChirpClient(host, port)


class TestLiveTiering:
    def test_demote_then_recall_over_the_wire(self, tmp_path):
        with NestServer(tiered_config(tmp_path)) as server:
            client = chirp(server)
            try:
                client.put("/data.dat", b"d" * 4096)
                assert server.tier_manager.scan_once() == ["/data.dat"]
                assert server.tiered.state_of("/data.dat") == COLD
                assert not server.tiered.fast.exists("/data.dat")
                # Recall on miss through the real protocol path.
                assert client.get("/data.dat") == b"d" * 4096
                assert server.tiered.state_of("/data.dat") == HOT
            finally:
                client.close()

    def test_reads_heat_the_file_against_demotion(self, tmp_path):
        with NestServer(tiered_config(tmp_path)) as server:
            client = chirp(server)
            try:
                client.put("/busy.dat", b"b" * 1024)
                client.get("/busy.dat")  # heat 1.0 > default ceiling
                assert server.tier_manager.scan_once() == []
                assert server.tiered.state_of("/busy.dat") == HOT
            finally:
                client.close()

    def test_tier_metrics_registered(self, tmp_path):
        with NestServer(tiered_config(tmp_path)) as server:
            client = chirp(server)
            try:
                client.put("/m.dat", b"m" * 512)
                server.tier_manager.scan_once()
            finally:
                client.close()
            text = server.obs.render_prometheus()
            assert 'tier_migrations_total{outcome="ok"} 1' in text
            assert "tier_cold_used_bytes 512" in text

    def test_hot_files_advertised(self, tmp_path):
        with NestServer(tiered_config(tmp_path)) as server:
            client = chirp(server)
            try:
                client.put("/pop.dat", b"p" * 256)
                client.get("/pop.dat")
            finally:
                client.close()
            ad = server.advertisement()
            assert list(ad.eval("HotFiles")) == ["/pop.dat"]


class TestRestartRecovery:
    def test_residency_survives_graceful_restart(self, tmp_path):
        with NestServer(tiered_config(tmp_path)) as server:
            client = chirp(server)
            try:
                client.put("/keep.dat", b"k" * 2048)
                server.tier_manager.scan_once()
                assert server.tiered.state_of("/keep.dat") == COLD
            finally:
                client.close()
        # Fresh process: fast tier (memory) is gone; the cold tier and
        # the journaled residency bring the file back.
        with NestServer(tiered_config(tmp_path)) as server:
            assert server.tiered.state_of("/keep.dat") == COLD
            client = chirp(server)
            try:
                assert client.get("/keep.dat") == b"k" * 2048
            finally:
                client.close()

    def test_residency_survives_crash(self, tmp_path):
        server = NestServer(tiered_config(tmp_path))
        server.start()
        client = chirp(server)
        try:
            client.put("/crashy.dat", b"c" * 1024)
            server.tier_manager.scan_once()
        finally:
            client.close()
        server.crash()  # no snapshot: journal replay must carry it
        with NestServer(tiered_config(tmp_path)) as server:
            assert server.tiered.state_of("/crashy.dat") == COLD
            client = chirp(server)
            try:
                assert client.get("/crashy.dat") == b"c" * 1024
                assert server.tiered.state_of("/crashy.dat") == HOT
            finally:
                client.close()

    def test_recovery_reconciles_fastless_hot_file(self, tmp_path):
        """A HOT file lives only in the (memory) fast tier: after a
        crash its bytes are gone, and recovery must not resurrect a
        residency claim for it."""
        server = NestServer(tiered_config(tmp_path))
        server.start()
        client = chirp(server)
        try:
            client.put("/lost.dat", b"l" * 128)   # HOT, never demoted
            client.put("/safe.dat", b"s" * 128)
            server.tier_manager.scan_once()       # both demoted
            assert client.get("/lost.dat") == b"l" * 128  # recalled: HOT
        finally:
            client.close()
        server.crash()
        with NestServer(tiered_config(tmp_path)) as server:
            assert server.tiered.state_of("/safe.dat") == COLD
            # the recalled file's bytes died with the memory fast tier
            assert not server.tiered.exists("/lost.dat")
            assert server.tiered.residency.get("/lost.dat") is None
