"""Unit tests for TieredStore: residency machine, recall on miss,
journal records, crash reconciliation, and the rate-limited cold tier."""

import pytest

from repro.nest.backends import MemoryStore
from repro.tier.store import (
    COLD,
    HOT,
    MIGRATING,
    RECALLING,
    RateLimitedStore,
    TieredStore,
    TierError,
)


def put(store, path, data):
    with store.open_write(path) as stream:
        stream.write(data)


def get(store, path):
    with store.open_read(path) as stream:
        return stream.read()


@pytest.fixture
def tiers():
    fast, cold = MemoryStore(), MemoryStore()
    return fast, cold, TieredStore(fast, cold)


class TestMigrate:
    def test_moves_bytes_to_cold(self, tiers):
        fast, cold, tiered = tiers
        put(tiered, "/a.dat", b"x" * 1000)
        moved = tiered.migrate("/a.dat")
        assert moved == 1000
        assert tiered.state_of("/a.dat") == COLD
        assert not fast.exists("/a.dat")
        assert cold.size("/a.dat") == 1000

    def test_size_and_exists_span_tiers(self, tiers):
        _fast, _cold, tiered = tiers
        put(tiered, "/a.dat", b"x" * 123)
        tiered.migrate("/a.dat")
        assert tiered.exists("/a.dat")
        assert tiered.size("/a.dat") == 123

    def test_rejects_non_hot(self, tiers):
        _fast, _cold, tiered = tiers
        put(tiered, "/a.dat", b"x")
        tiered.migrate("/a.dat")
        with pytest.raises(TierError):
            tiered.migrate("/a.dat")

    def test_rejects_missing_file(self, tiers):
        _fast, _cold, tiered = tiers
        with pytest.raises(TierError):
            tiered.migrate("/nope.dat")


class TestRecall:
    def test_read_recalls_on_miss(self, tiers):
        fast, cold, tiered = tiers
        put(tiered, "/a.dat", b"y" * 500)
        tiered.migrate("/a.dat")
        assert get(tiered, "/a.dat") == b"y" * 500
        assert tiered.state_of("/a.dat") == HOT
        assert fast.size("/a.dat") == 500
        assert not cold.exists("/a.dat")

    def test_explicit_recall_requires_cold(self, tiers):
        _fast, _cold, tiered = tiers
        put(tiered, "/a.dat", b"y")
        with pytest.raises(TierError):
            tiered.recall("/a.dat")


class TestWrites:
    def test_overwrite_cold_promotes_and_invalidates(self, tiers):
        fast, cold, tiered = tiers
        put(tiered, "/a.dat", b"old" * 100)
        tiered.migrate("/a.dat")
        put(tiered, "/a.dat", b"new")
        assert tiered.state_of("/a.dat") == HOT
        assert get(tiered, "/a.dat") == b"new"
        assert not cold.exists("/a.dat")

    def test_append_over_cold_recalls_first(self, tiers):
        _fast, _cold, tiered = tiers
        put(tiered, "/a.dat", b"head-")
        tiered.migrate("/a.dat")
        with tiered.open_write("/a.dat", append=True) as stream:
            stream.write(b"tail")
        assert get(tiered, "/a.dat") == b"head-tail"
        assert tiered.state_of("/a.dat") == HOT

    def test_delete_clears_both_tiers(self, tiers):
        fast, cold, tiered = tiers
        put(tiered, "/a.dat", b"z" * 64)
        tiered.migrate("/a.dat")
        tiered.delete("/a.dat")
        assert not tiered.exists("/a.dat")
        assert tiered.state_of("/a.dat") == HOT  # no residual entry
        assert tiered.residency == {}


class TestJournal:
    def test_migrate_journals_before_apply(self, tiers):
        _fast, _cold, tiered = tiers
        log = []
        tiered.journal = lambda rtype, **f: log.append((rtype, f))
        put(tiered, "/a.dat", b"j" * 10)
        tiered.migrate("/a.dat")
        states = [f["state"] for rtype, f in log if rtype == "tier_state"]
        assert states == [MIGRATING, COLD]

    def test_recall_journal_order(self, tiers):
        _fast, _cold, tiered = tiers
        put(tiered, "/a.dat", b"j" * 10)
        tiered.migrate("/a.dat")
        log = []
        tiered.journal = lambda rtype, **f: log.append((rtype, f))
        tiered.recall("/a.dat")
        states = [f["state"] for rtype, f in log if rtype == "tier_state"]
        assert states == [RECALLING, HOT]

    def test_plain_hot_write_journals_nothing(self, tiers):
        _fast, _cold, tiered = tiers
        log = []
        tiered.journal = lambda rtype, **f: log.append((rtype, f))
        put(tiered, "/a.dat", b"quiet")
        assert log == []


class TestReplay:
    def test_serialize_restore_roundtrip(self, tiers):
        _fast, _cold, tiered = tiers
        put(tiered, "/a.dat", b"s" * 8)
        tiered.migrate("/a.dat")
        state = tiered.serialize()
        other = TieredStore(MemoryStore(), MemoryStore())
        other.restore(state)
        assert other.state_of("/a.dat") == COLD

    def test_apply_record(self, tiers):
        _fast, _cold, tiered = tiers
        assert tiered.apply_record({"type": "tier_state", "path": "/a",
                                    "state": COLD})
        assert tiered.state_of("/a") == COLD
        assert tiered.apply_record({"type": "tier_drop", "path": "/a"})
        assert tiered.state_of("/a") == HOT
        assert not tiered.apply_record({"type": "put_begin", "path": "/a"})


class TestReconcile:
    def test_migrating_keeps_fast_copy(self, tiers):
        fast, cold, tiered = tiers
        put(fast, "/a.dat", b"whole")
        put(cold, "/a.dat", b"par")  # partial cold copy from the crash
        tiered.residency["/a.dat"] = MIGRATING
        actions = tiered.reconcile()
        assert actions == [{"path": "/a.dat", "was": MIGRATING, "now": HOT}]
        assert tiered.state_of("/a.dat") == HOT
        assert not cold.exists("/a.dat")

    def test_recalling_keeps_cold_copy(self, tiers):
        fast, cold, tiered = tiers
        put(cold, "/a.dat", b"whole")
        put(fast, "/a.dat", b"par")  # partial recall from the crash
        tiered.residency["/a.dat"] = RECALLING
        actions = tiered.reconcile()
        assert actions == [{"path": "/a.dat", "was": RECALLING, "now": COLD}]
        assert tiered.state_of("/a.dat") == COLD
        assert not fast.exists("/a.dat")

    def test_cold_with_leftover_fast_copy(self, tiers):
        fast, cold, tiered = tiers
        put(cold, "/a.dat", b"whole")
        put(fast, "/a.dat", b"whole")  # crash between COLD and fast delete
        tiered.residency["/a.dat"] = COLD
        tiered.reconcile()
        assert tiered.state_of("/a.dat") == COLD
        assert not fast.exists("/a.dat")

    def test_cold_without_cold_bytes_falls_back_to_fast(self, tiers):
        fast, _cold, tiered = tiers
        put(fast, "/a.dat", b"whole")
        tiered.residency["/a.dat"] = COLD
        tiered.reconcile()
        assert tiered.state_of("/a.dat") == HOT

    def test_bytes_gone_everywhere_drops_entry(self, tiers):
        _fast, _cold, tiered = tiers
        tiered.residency["/a.dat"] = COLD
        actions = tiered.reconcile()
        assert actions[0]["now"] == "absent"
        assert tiered.residency == {}

    def test_rebuilds_cold_occupancy(self, tiers):
        _fast, cold, tiered = tiers
        put(cold, "/a.dat", b"c" * 77)
        tiered.residency["/a.dat"] = COLD
        tiered.reconcile()
        assert tiered._cold_bytes == 77


class TestRateLimitedStore:
    def test_throttles_reads(self):
        sleeps = []
        inner = MemoryStore()
        put(inner, "/a.dat", b"d" * 1000)
        store = RateLimitedStore(inner, bandwidth_bps=1e6,
                                 sleep=sleeps.append)
        assert get(store, "/a.dat") == b"d" * 1000
        assert sum(sleeps) == pytest.approx(0.001)

    def test_mount_latency_charged_per_open(self):
        sleeps = []
        inner = MemoryStore()
        put(inner, "/a.dat", b"d")
        store = RateLimitedStore(inner, bandwidth_bps=0.0, latency=0.25,
                                 sleep=sleeps.append)
        get(store, "/a.dat")
        get(store, "/a.dat")
        assert sleeps.count(0.25) == 2

    def test_sleep_capped_per_call(self):
        sleeps = []
        inner = MemoryStore()
        put(inner, "/a.dat", b"d" * 4096)
        store = RateLimitedStore(inner, bandwidth_bps=1.0,
                                 sleep=sleeps.append)
        get(store, "/a.dat")
        assert max(sleeps) <= 0.2

    def test_forwards_datastore_protocol(self):
        inner = MemoryStore()
        store = RateLimitedStore(inner, sleep=lambda _s: None)
        put(store, "/a.dat", b"fwd")
        assert store.exists("/a.dat")
        assert store.size("/a.dat") == 3
        store.delete("/a.dat")
        assert not store.exists("/a.dat")
