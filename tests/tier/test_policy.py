"""Unit tests for the migration policy and the background scanner."""

import pytest

from repro.nest.backends import MemoryStore
from repro.nest.storage import StorageManager
from repro.tier.heat import HeatTracker
from repro.tier.policy import TierManager, TierPolicy, walk_files
from repro.tier.store import COLD, HOT, TieredStore


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def put(storage, path, data, user="anonymous"):
    ticket = storage.approve_put(user, path, len(data))
    ticket.stream.write(data)
    ticket.settle(len(data))


class TestTierPolicy:
    def test_demotes_old_big_cold_file(self):
        policy = TierPolicy(demote_after=60.0, min_size=10, heat_ceiling=0.5)
        assert policy.should_demote(age=120.0, size=100, heat=0.0,
                                    pinned=False)

    def test_young_file_stays(self):
        policy = TierPolicy(demote_after=60.0)
        assert not policy.should_demote(age=30.0, size=100, heat=0.0,
                                        pinned=False)

    def test_small_file_stays(self):
        policy = TierPolicy(demote_after=0.0, min_size=1024)
        assert not policy.should_demote(age=999.0, size=100, heat=0.0,
                                        pinned=False)

    def test_hot_file_stays(self):
        policy = TierPolicy(demote_after=0.0, heat_ceiling=0.5)
        assert not policy.should_demote(age=999.0, size=100, heat=2.0,
                                        pinned=False)

    def test_pinned_file_stays(self):
        policy = TierPolicy(demote_after=0.0)
        assert not policy.should_demote(age=999.0, size=100, heat=0.0,
                                        pinned=True)

    def test_pins_ignorable(self):
        policy = TierPolicy(demote_after=0.0, respect_pins=False)
        assert policy.should_demote(age=999.0, size=100, heat=0.0,
                                    pinned=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            TierPolicy(demote_after=-1.0)
        with pytest.raises(ValueError):
            TierPolicy(min_size=-1)
        with pytest.raises(ValueError):
            TierPolicy(heat_ceiling=-0.1)


class TestWalkFiles:
    def test_walks_nested_namespace(self):
        storage = StorageManager(store=MemoryStore())
        storage.mkdir("anonymous", "/dir")
        put(storage, "/dir/a.dat", b"a" * 10)
        put(storage, "/top.dat", b"t" * 5)
        assert walk_files(storage) == [("/dir/a.dat", 10), ("/top.dat", 5)]


@pytest.fixture
def scanner():
    clock = Clock()
    fast, cold = MemoryStore(), MemoryStore()
    tiered = TieredStore(fast, cold)
    storage = StorageManager(store=tiered)
    heat = HeatTracker(halflife=10.0, clock=clock)
    manager = TierManager(
        storage, tiered, heat,
        policy=TierPolicy(demote_after=60.0, min_size=1, heat_ceiling=0.5),
        clock=clock)
    return clock, storage, tiered, heat, manager


class TestTierManager:
    def test_never_read_file_ages_from_first_scan(self, scanner):
        clock, storage, tiered, _heat, manager = scanner
        put(storage, "/a.dat", b"a" * 100)
        assert manager.candidates() == []  # first sighting: age 0
        clock.now = 120.0
        assert manager.candidates() == [("/a.dat", 100)]

    def test_recent_read_blocks_demotion(self, scanner):
        clock, storage, _tiered, heat, manager = scanner
        put(storage, "/a.dat", b"a" * 100)
        manager.candidates()
        clock.now = 120.0
        heat.record("/a.dat")  # fresh read: young again and hot
        assert manager.candidates() == []

    def test_cold_files_ordered_oldest_first(self, scanner):
        clock, storage, _tiered, heat, manager = scanner
        put(storage, "/old.dat", b"o" * 10)
        put(storage, "/new.dat", b"n" * 10)
        heat.record("/old.dat")
        clock.now = 500.0
        heat.record("/new.dat")
        clock.now = 600.0
        assert [p for p, _ in manager.candidates()] == [
            "/old.dat", "/new.dat"]

    def test_scan_once_migrates_and_counts(self, scanner):
        clock, storage, tiered, _heat, manager = scanner
        put(storage, "/a.dat", b"a" * 100)
        manager.candidates()
        clock.now = 120.0
        assert manager.scan_once() == ["/a.dat"]
        assert tiered.state_of("/a.dat") == COLD
        assert manager.migrated_files == 1
        assert manager.migrated_bytes == 100

    def test_scan_respects_max_per_scan(self, scanner):
        clock, storage, _tiered, _heat, manager = scanner
        manager.max_per_scan = 2
        for i in range(4):
            put(storage, f"/f{i}.dat", b"x" * 10)
        manager.candidates()
        clock.now = 120.0
        assert len(manager.scan_once()) == 2

    def test_already_cold_files_skipped(self, scanner):
        clock, storage, tiered, _heat, manager = scanner
        put(storage, "/a.dat", b"a" * 100)
        manager.candidates()
        clock.now = 120.0
        manager.scan_once()
        assert manager.candidates() == []  # COLD now, not a candidate

    def test_pinned_lot_blocks_demotion(self):
        clock = Clock()
        tiered = TieredStore(MemoryStore(), MemoryStore())
        storage = StorageManager(store=tiered, capacity_bytes=1 << 20)
        lot = storage.lots.create_lot("alice", 4096, 3600.0)
        storage.lots.attach(lot.lot_id, "/pinned", "alice")
        storage.mkdir("anonymous", "/pinned")
        put(storage, "/pinned/a.dat", b"p" * 100)
        heat = HeatTracker(clock=clock)
        manager = TierManager(storage, tiered, heat,
                              policy=TierPolicy(demote_after=0.0),
                              clock=clock)
        storage.lots.pin_lot(lot.lot_id, True, "alice")
        assert storage.lots.is_pinned("/pinned/a.dat")
        assert manager.candidates() == []
        storage.lots.pin_lot(lot.lot_id, False, "alice")
        assert manager.candidates() == [("/pinned/a.dat", 100)]

    def test_describe(self, scanner):
        _clock, _storage, _tiered, _heat, manager = scanner
        doc = manager.describe()
        assert doc["policy"]["demote_after"] == 60.0
        assert doc["scans"] == 0
