"""Crash sweep over the tiering journal: kill at every journal
boundary of a migrate/recall/overwrite workload; every boot must come
back with consistent residency -- no file lost between tiers, no file
doubled across them."""

import pytest

from repro.faults.disk import DiskFaultPlan, SimulatedCrash
from repro.nest.backends import MemoryStore
from repro.tier.demo import (
    _PAYLOADS,
    _tier_boot,
    _tier_workload,
    _workload_records,
    run_crash_harness,
)
from repro.tier.store import COLD, HOT


def test_sweep_every_journal_boundary(tmp_path):
    result = run_crash_harness(str(tmp_path))
    assert result["crash_points"] >= 10, "workload too small for a sweep"
    assert result["survived"], result["failures"]


def test_double_boot_is_deterministic(tmp_path):
    """Recovering twice from the same crashed journal must settle on
    the same residency and the same bytes (replay + reconcile are
    deterministic, and reconcile's store repairs are idempotent)."""
    total = _workload_records(str(tmp_path))
    mid = total // 2
    fast, cold = MemoryStore(), MemoryStore()
    storage, tiered, manager, _ = _tier_boot(
        str(tmp_path / "state"), fast, cold,
        faults=DiskFaultPlan.crash_at_record(mid))
    with pytest.raises(SimulatedCrash):
        _tier_workload(storage, tiered)
    manager.journal.close()

    snapshots = []
    for _boot in range(2):
        _s2, t2, m2, _ = _tier_boot(str(tmp_path / "state"), fast, cold)
        snapshots.append({
            "residency": dict(t2.residency),
            "fast": {p: t2.fast.size(p) for p in _PAYLOADS
                     if t2.fast.exists(p)},
            "cold": {p: t2.cold.size(p) for p in _PAYLOADS
                     if t2.cold.exists(p)},
        })
        m2.close(snapshot=False)
    assert snapshots[0] == snapshots[1]
    for state in snapshots[0]["residency"].values():
        assert state in (HOT, COLD)


def test_torn_tier_record_recovers(tmp_path):
    """A torn write of a tier_state record truncates to the previous
    boundary; recovery still lands in a consistent state."""
    total = _workload_records(str(tmp_path))
    for seq in range(max(1, total - 6), total + 1):
        state_dir = str(tmp_path / f"torn{seq}")
        fast, cold = MemoryStore(), MemoryStore()
        storage, tiered, manager, _ = _tier_boot(
            state_dir, fast, cold, faults=DiskFaultPlan.torn_record(seq))
        with pytest.raises(SimulatedCrash):
            _tier_workload(storage, tiered)
        manager.journal.close()
        _s2, t2, m2, report = _tier_boot(state_dir, fast, cold)
        for path, state in t2.residency.items():
            assert state in (HOT, COLD), f"{path} stuck {state} at {seq}"
        for path in _PAYLOADS:
            in_fast = t2.fast.exists(path)
            in_cold = t2.cold.exists(path)
            assert not (in_fast and in_cold), f"{path} doubled at {seq}"
        m2.close(snapshot=False)
