"""Unit tests for the per-file access-heat tracker."""

import pytest

from repro.tier.heat import HeatTracker


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return Clock()


class TestDecay:
    def test_one_read_is_one_heat(self, clock):
        tracker = HeatTracker(halflife=10.0, clock=clock)
        tracker.record("/a.dat", nbytes=100)
        assert tracker.heat("/a.dat") == pytest.approx(1.0)

    def test_heat_halves_per_halflife(self, clock):
        tracker = HeatTracker(halflife=10.0, clock=clock)
        tracker.record("/a.dat")
        clock.now = 10.0
        assert tracker.heat("/a.dat") == pytest.approx(0.5)
        clock.now = 20.0
        assert tracker.heat("/a.dat") == pytest.approx(0.25)

    def test_reads_accumulate(self, clock):
        tracker = HeatTracker(halflife=10.0, clock=clock)
        tracker.record("/a.dat")
        tracker.record("/a.dat")
        assert tracker.heat("/a.dat") == pytest.approx(2.0)

    def test_unknown_path_is_cold(self, clock):
        tracker = HeatTracker(clock=clock)
        assert tracker.heat("/nope") == 0.0
        assert tracker.last_access("/nope") is None


class TestHottest:
    def test_orders_by_heat(self, clock):
        tracker = HeatTracker(halflife=10.0, clock=clock)
        tracker.record("/cold.dat")
        for _ in range(5):
            tracker.record("/hot.dat")
        for _ in range(3):
            tracker.record("/warm.dat")
        assert [p for p, _ in tracker.hottest(3)] == [
            "/hot.dat", "/warm.dat", "/cold.dat"]

    def test_prefix_filter(self, clock):
        tracker = HeatTracker(clock=clock)
        tracker.record("/replicas/a.dat")
        tracker.record("/other/b.dat")
        paths = [p for p, _ in tracker.hottest(10, prefix="/replicas/")]
        assert paths == ["/replicas/a.dat"]

    def test_ties_break_by_path(self, clock):
        tracker = HeatTracker(clock=clock)
        tracker.record("/b.dat")
        tracker.record("/a.dat")
        assert [p for p, _ in tracker.hottest(2)] == ["/a.dat", "/b.dat"]


class TestBound:
    def test_evicts_coldest_at_capacity(self, clock):
        tracker = HeatTracker(halflife=10.0, max_files=2, clock=clock)
        tracker.record("/old.dat")
        clock.now = 30.0  # /old.dat decays to 1/8
        tracker.record("/a.dat")
        tracker.record("/b.dat")
        snap = tracker.snapshot()
        assert "/old.dat" not in snap
        assert set(snap) == {"/a.dat", "/b.dat"}

    def test_last_access_tracks_clock(self, clock):
        tracker = HeatTracker(clock=clock)
        clock.now = 7.0
        tracker.record("/a.dat")
        assert tracker.last_access("/a.dat") == pytest.approx(7.0)


class TestAdAttributes:
    def test_shape(self, clock):
        tracker = HeatTracker(clock=clock)
        for _ in range(3):
            tracker.record("/replicas/hot.dat", nbytes=1024)
        attrs = tracker.ad_attributes(top_n=2)
        assert attrs["HotFiles"] == ["/replicas/hot.dat"]
        assert attrs["HotFileHeat"] == pytest.approx(3.0)

    def test_empty_tracker(self, clock):
        attrs = HeatTracker(clock=clock).ad_attributes()
        assert attrs["HotFiles"] == []


class TestValidation:
    def test_rejects_bad_halflife(self):
        with pytest.raises(ValueError):
            HeatTracker(halflife=0.0)

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            HeatTracker(max_files=0)
