"""Unit tests for quota accounting."""

import pytest

from repro.models.quota import OverQuota, QuotaTable


class TestLimits:
    def test_unconfigured_user_unconstrained(self):
        q = QuotaTable()
        q.charge("free", 10**12)  # no limit, no error
        assert q.used_by("free") == 0
        assert q.available_to("free") is None

    def test_charge_within_limit(self):
        q = QuotaTable()
        q.set_limit("u", 1000)
        q.charge("u", 600)
        assert q.used_by("u") == 600
        assert q.available_to("u") == 400

    def test_charge_over_limit_raises(self):
        q = QuotaTable()
        q.set_limit("u", 100)
        with pytest.raises(OverQuota) as info:
            q.charge("u", 150)
        assert info.value.available == 100
        assert q.used_by("u") == 0  # failed charge leaves state intact

    def test_exact_fit_allowed(self):
        q = QuotaTable()
        q.set_limit("u", 100)
        q.charge("u", 100)
        assert q.available_to("u") == 0

    def test_release(self):
        q = QuotaTable()
        q.set_limit("u", 100)
        q.charge("u", 80)
        q.release("u", 30)
        assert q.used_by("u") == 50

    def test_release_floors_at_zero(self):
        q = QuotaTable()
        q.set_limit("u", 100)
        q.charge("u", 10)
        q.release("u", 500)
        assert q.used_by("u") == 0

    def test_resize_keeps_usage(self):
        q = QuotaTable()
        q.set_limit("u", 100)
        q.charge("u", 90)
        q.set_limit("u", 50)  # now over; future charges fail
        assert q.used_by("u") == 90
        with pytest.raises(OverQuota):
            q.charge("u", 1)

    def test_remove_unconstrains(self):
        q = QuotaTable()
        q.set_limit("u", 1)
        q.remove("u")
        q.charge("u", 10**9)

    def test_would_fit(self):
        q = QuotaTable()
        q.set_limit("u", 100)
        assert q.would_fit("u", 100)
        assert not q.would_fit("u", 101)
        assert q.would_fit("other", 10**15)

    def test_negative_amounts_rejected(self):
        q = QuotaTable()
        q.set_limit("u", 100)
        with pytest.raises(ValueError):
            q.charge("u", -1)
        with pytest.raises(ValueError):
            q.release("u", -1)
