"""Unit tests for the seek-aware disk model."""

import pytest

from repro.models.disk import Disk
from repro.sim import Environment


def make_disk(env, bw=100.0, seek=1.0):
    return Disk(env, read_bw=bw, write_bw=bw, seek_time=seek)


class TestSequentialVsSeek:
    def test_first_access_seeks(self):
        env = Environment()
        disk = make_disk(env)

        def proc():
            yield from disk.read("f", 0, 100)

        env.run(env.process(proc()))
        assert env.now == pytest.approx(1.0 + 1.0)  # seek + 100/100
        assert disk.seeks == 1

    def test_sequential_continuation_skips_seek(self):
        env = Environment()
        disk = make_disk(env)

        def proc():
            yield from disk.read("f", 0, 100)
            yield from disk.read("f", 100, 100)

        env.run(env.process(proc()))
        assert disk.seeks == 1
        assert env.now == pytest.approx(1.0 + 2.0)

    def test_file_switch_seeks(self):
        env = Environment()
        disk = make_disk(env)

        def proc():
            yield from disk.read("a", 0, 100)
            yield from disk.read("b", 0, 100)
            yield from disk.read("a", 100, 100)

        env.run(env.process(proc()))
        assert disk.seeks == 3

    def test_offset_hole_seeks(self):
        env = Environment()
        disk = make_disk(env)

        def proc():
            yield from disk.read("a", 0, 100)
            yield from disk.read("a", 500, 100)

        env.run(env.process(proc()))
        assert disk.seeks == 2


class TestSerialization:
    def test_concurrent_requests_serialize(self):
        env = Environment()
        disk = make_disk(env, bw=100, seek=0.5)
        ends = []

        def proc(name, file):
            yield from disk.read(file, 0, 100)
            ends.append((env.now, name))

        env.process(proc("a", "fa"))
        env.process(proc("b", "fb"))
        env.run()
        assert ends[0][1] == "a"
        assert ends[0][0] == pytest.approx(1.5)
        assert ends[1][0] == pytest.approx(3.0)

    def test_queue_length_visible(self):
        env = Environment()
        disk = make_disk(env)

        def long_read():
            yield from disk.read("a", 0, 1000)

        def waiter():
            yield env.timeout(0.1)
            yield from disk.read("b", 0, 10)

        env.process(long_read())
        env.process(waiter())
        env.run(until=0.2)
        assert disk.queue_length == 1


class TestAccounting:
    def test_byte_counters(self):
        env = Environment()
        disk = make_disk(env)

        def proc():
            yield from disk.read("a", 0, 70)
            yield from disk.write("a", 70, 30)

        env.run(env.process(proc()))
        assert disk.bytes_read == 70
        assert disk.bytes_written == 30

    def test_zero_byte_io_is_free(self):
        env = Environment()
        disk = make_disk(env)

        def proc():
            yield from disk.read("a", 0, 0)

        env.run(env.process(proc()))
        assert env.now == 0.0 and disk.seeks == 0

    def test_write_continues_head_position(self):
        env = Environment()
        disk = make_disk(env)

        def proc():
            yield from disk.write("a", 0, 100)
            yield from disk.read("a", 100, 50)

        env.run(env.process(proc()))
        assert disk.seeks == 1
