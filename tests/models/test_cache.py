"""Unit tests for the LRU buffer-cache model."""

import pytest

from repro.models.cache import BufferCache


def cache(blocks=4, bs=100):
    return BufferCache(capacity_bytes=blocks * bs, block_size=bs)


class TestGeometry:
    def test_blocks_of_exact(self):
        c = cache()
        assert list(c.blocks_of(0, 100)) == [0]
        assert list(c.blocks_of(0, 200)) == [0, 1]

    def test_blocks_of_straddling(self):
        c = cache()
        assert list(c.blocks_of(50, 100)) == [0, 1]
        assert list(c.blocks_of(99, 2)) == [0, 1]

    def test_blocks_of_empty(self):
        c = cache()
        assert list(c.blocks_of(0, 0)) == []

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            BufferCache(-1)
        with pytest.raises(ValueError):
            BufferCache(100, block_size=0)


class TestReadPath:
    def test_miss_populates(self):
        c = cache()
        hit, miss, evicted = c.access_read("f", 0, 200)
        assert (hit, miss) == (0, 200)
        assert evicted == []
        hit, miss, _ = c.access_read("f", 0, 200)
        assert (hit, miss) == (200, 0)

    def test_hit_miss_counters(self):
        c = cache()
        c.access_read("f", 0, 200)
        c.access_read("f", 0, 400)
        assert c.hits == 2 and c.misses == 4

    def test_lru_eviction_order(self):
        c = cache(blocks=2)
        c.access_read("a", 0, 100)
        c.access_read("b", 0, 100)
        c.access_read("a", 0, 100)  # refresh a
        c.access_read("c", 0, 100)  # evicts b
        assert c.contains("a", 0)
        assert not c.contains("b", 0)
        assert c.contains("c", 0)

    def test_eviction_returns_dirty_blocks(self):
        c = cache(blocks=2)
        c.access_write("d", 0, 200)  # both blocks dirty
        evicted = []
        _, _, ev = c.access_read("x", 0, 200)
        evicted.extend(ev)
        assert set(evicted) == {("d", 0), ("d", 1)}


class TestWritePath:
    def test_write_marks_dirty(self):
        c = cache()
        c.access_write("f", 0, 100)
        assert c.dirty_bytes == 100

    def test_clean_clears_dirty(self):
        c = cache()
        c.access_write("f", 0, 200)
        c.clean([("f", 0), ("f", 1)])
        assert c.dirty_bytes == 0
        assert c.resident_bytes == 200

    def test_dirty_blocks_of(self):
        c = cache()
        c.access_write("f", 0, 100)
        c.access_write("g", 0, 100)
        assert c.dirty_blocks_of("f") == [("f", 0)]

    def test_rewrite_keeps_single_copy(self):
        c = cache()
        c.access_write("f", 0, 100)
        c.access_write("f", 0, 100)
        assert len(c) == 1

    def test_zero_capacity_cache_bounces_writes(self):
        c = BufferCache(0, block_size=100)
        evicted = c.access_write("f", 0, 100)
        assert evicted == [("f", 0)]
        assert len(c) == 0


class TestInvalidation:
    def test_invalidate_file(self):
        c = cache()
        c.access_read("f", 0, 200)
        c.access_read("g", 0, 100)
        c.invalidate_file("f")
        assert not c.contains("f", 0)
        assert c.contains("g", 0)

    def test_resident_fraction(self):
        c = cache(blocks=8)
        c.access_read("f", 0, 400)
        assert c.resident_fraction("f", 400) == pytest.approx(1.0)
        assert c.resident_fraction("f", 800) == pytest.approx(0.5)
        assert c.resident_fraction("g", 100) == 0.0

    def test_resident_fraction_empty_file(self):
        c = cache()
        assert c.resident_fraction("f", 0) == 1.0
