"""Unit tests for platform profiles."""

import pytest

from repro.models.platform import LINUX, SOLARIS, get_platform


class TestProfiles:
    def test_lookup_by_name(self):
        assert get_platform("linux") is LINUX
        assert get_platform("SOLARIS") is SOLARIS

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            get_platform("plan9")

    def test_scaled_override(self):
        fast = LINUX.scaled(disk_read_bw=1e9)
        assert fast.disk_read_bw == 1e9
        assert fast.link_bw == LINUX.link_bw
        assert LINUX.disk_read_bw != 1e9  # original untouched

    def test_profiles_frozen(self):
        with pytest.raises(Exception):
            LINUX.link_bw = 1.0

    def test_relative_costs_match_paper_claims(self):
        # Fig. 5's premises: Solaris thread ops are expensive relative
        # to event dispatch; the Solaris network is the slow 100 Mbit.
        assert SOLARIS.thread_create_cost > 5 * SOLARIS.event_dispatch_cost
        assert SOLARIS.link_bw < LINUX.link_bw / 2
        # Processes cost more than threads on both platforms.
        for p in (LINUX, SOLARIS):
            assert p.process_create_cost > p.thread_create_cost
            assert p.process_switch_cost > p.thread_switch_cost

    def test_event_chunks_smaller_than_thread_chunks(self):
        for p in (LINUX, SOLARIS):
            assert p.event_chunk < p.thread_chunk
