"""Unit tests for the composed filesystem model."""

import pytest

from repro.models.filesystem import FileSystemModel
from repro.models.platform import LINUX
from repro.models.quota import OverQuota
from repro.sim import Environment


def make_fs(quotas=False, **kwargs):
    env = Environment()
    fs = FileSystemModel(env, LINUX, quotas_enabled=quotas, **kwargs)
    return env, fs


def run_io(env, gen):
    return env.run(env.process(gen))


class TestMetadata:
    def test_create_lookup_delete(self):
        env, fs = make_fs()
        fs.create("/a", "u")
        assert fs.lookup("/a").owner == "u"
        fs.delete("/a")
        with pytest.raises(FileNotFoundError):
            fs.lookup("/a")

    def test_create_duplicate_rejected(self):
        env, fs = make_fs()
        fs.create("/a", "u")
        with pytest.raises(FileExistsError):
            fs.create("/a", "u")

    def test_delete_releases_space_and_quota(self):
        env, fs = make_fs()
        fs.quotas.set_limit("u", 1000)
        fs.create("/a", "u")

        def write():
            yield from fs.write("/a", 0, 500)

        run_io(env, write())
        assert fs.used_bytes == 500
        assert fs.quotas.used_by("u") == 500
        fs.delete("/a")
        assert fs.used_bytes == 0
        assert fs.quotas.used_by("u") == 0


class TestTiming:
    def test_cached_read_is_memory_speed(self):
        env, fs = make_fs()
        fs.create("/a", "u")
        run_io(env, fs.write("/a", 0, 1 << 20))
        t0 = env.now

        def read():
            yield from fs.read("/a", 0, 1 << 20)

        run_io(env, read())
        elapsed = env.now - t0
        assert elapsed < (1 << 20) / LINUX.mem_copy_bw * 2

    def test_uncached_read_hits_disk(self):
        env, fs = make_fs()
        fs.create("/a", "u")
        fs.files["/a"].size = 1 << 20  # data "exists" but is not cached

        def read():
            yield from fs.read("/a", 0, 1 << 20)

        run_io(env, read())
        assert env.now >= (1 << 20) / LINUX.disk_read_bw
        assert fs.disk.bytes_read >= 1 << 20

    def test_read_beyond_eof_truncated(self):
        env, fs = make_fs()
        fs.create("/a", "u")
        run_io(env, fs.write("/a", 0, 100))

        def read():
            yield from fs.read("/a", 50, 1000)

        run_io(env, read())  # should not raise

    def test_write_grows_file(self):
        env, fs = make_fs()
        fs.create("/a", "u")
        run_io(env, fs.write("/a", 0, 100))
        run_io(env, fs.write("/a", 100, 100))
        assert fs.lookup("/a").size == 200

    def test_overwrite_does_not_grow(self):
        env, fs = make_fs()
        fs.create("/a", "u")
        run_io(env, fs.write("/a", 0, 100))
        run_io(env, fs.write("/a", 0, 100))
        assert fs.lookup("/a").size == 100
        assert fs.used_bytes == 100


class TestQuotaIntegration:
    def test_over_quota_write_raises_before_spending_time(self):
        env, fs = make_fs()
        fs.quotas.set_limit("u", 100)
        fs.create("/a", "u")
        with pytest.raises(OverQuota):
            # The generator raises on first next() -- before any yield.
            next(fs.write("/a", 0, 200))
        assert env.now == 0.0
        assert fs.lookup("/a").size == 0

    def test_filesystem_full(self):
        env, fs = make_fs(capacity_bytes=1000)
        fs.create("/a", "u")
        with pytest.raises(OSError):
            next(fs.write("/a", 0, 2000))

    def test_quota_write_slower_than_without(self):
        big = 100 * 1_000_000

        def measure(quotas):
            env, fs = make_fs(quotas=quotas)
            fs.create("/a", "u")

            def stream():
                off = 0
                while off < big:
                    yield from fs.write("/a", off, 1 << 20)
                    off += 1 << 20
                yield from fs.sync("/a")

            run_io(env, stream())
            return env.now

        assert measure(True) > 1.5 * measure(False)

    def test_sync_flushes_dirty(self):
        env, fs = make_fs()
        fs.create("/a", "u")
        run_io(env, fs.write("/a", 0, 1 << 20))
        assert fs.cache.dirty_bytes > 0
        run_io(env, fs.sync("/a"))
        assert fs.cache.dirty_blocks_of("/a") == []
