"""Unit tests for the fair-share link model."""

import pytest

from repro.models.network import FairShareLink
from repro.sim import Environment
from repro.sim.core import SimulationError


def finish_times(capacity, flows, group_caps=None):
    """Run a set of (bytes, cap, group) flows; return completion times."""
    env = Environment()
    link = FairShareLink(env, capacity)
    for group, cap in (group_caps or {}).items():
        link.set_group_cap(group, cap)
    done = {}

    def flow(name, nbytes, cap, group):
        yield link.transfer(nbytes, cap=cap, group=group)
        done[name] = env.now

    for i, spec in enumerate(flows):
        nbytes, cap, group = spec
        env.process(flow(i, nbytes, cap, group))
    env.run()
    return done, link


class TestSingleFlow:
    def test_full_capacity(self):
        done, _ = finish_times(10.0, [(100, None, None)])
        assert done[0] == pytest.approx(10.0)

    def test_per_flow_cap(self):
        done, _ = finish_times(10.0, [(100, 2.0, None)])
        assert done[0] == pytest.approx(50.0)

    def test_zero_bytes_completes_immediately(self):
        env = Environment()
        link = FairShareLink(env, 10)
        ev = link.transfer(0)
        assert ev.triggered

    def test_negative_bytes_rejected(self):
        env = Environment()
        link = FairShareLink(env, 10)
        with pytest.raises(SimulationError):
            link.transfer(-1)

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(SimulationError):
            FairShareLink(Environment(), 0)


class TestFairSharing:
    def test_equal_split(self):
        # Two equal flows on a 10 B/s link: both at 5 B/s.
        done, _ = finish_times(10.0, [(50, None, None), (50, None, None)])
        assert done[0] == pytest.approx(10.0)
        assert done[1] == pytest.approx(10.0)

    def test_leftover_redistributed_after_completion(self):
        # Flow 1 is smaller; after it finishes flow 0 speeds up.
        done, _ = finish_times(10.0, [(100, None, None), (20, None, None)])
        # Phase 1: both at 5 until t=4 (flow1 done). Flow0 has 80 left
        # at 10 B/s -> done at 12.
        assert done[1] == pytest.approx(4.0)
        assert done[0] == pytest.approx(12.0)

    def test_capped_flow_leaves_room(self):
        # Flow 0 capped at 2; flow 1 takes the remaining 8.
        done, _ = finish_times(10.0, [(20, 2.0, None), (80, None, None)])
        assert done[0] == pytest.approx(10.0)
        assert done[1] == pytest.approx(10.0)

    def test_total_conservation(self):
        done, link = finish_times(
            10.0, [(40, None, None), (20, 2.0, None), (35, None, None)]
        )
        assert link.bytes_delivered == pytest.approx(95.0)

    def test_late_arrival_shares(self):
        env = Environment()
        link = FairShareLink(env, 10.0)
        done = {}

        def early():
            yield link.transfer(100)
            done["early"] = env.now

        def late():
            yield env.timeout(5)
            yield link.transfer(25)
            done["late"] = env.now

        env.process(early())
        env.process(late())
        env.run()
        # early: 50 bytes alone by t=5, then 5 B/s. late: 5 B/s.
        assert done["late"] == pytest.approx(10.0)
        assert done["early"] == pytest.approx(12.5)


class TestGroupCaps:
    def test_group_aggregate_capped(self):
        # Four flows in a group capped at 5 on a 100 B/s link.
        done, _ = finish_times(
            100.0,
            [(10, None, "g")] * 4,
            group_caps={"g": 5.0},
        )
        # Each flow: 5/4 = 1.25 B/s -> 8 s.
        for i in range(4):
            assert done[i] == pytest.approx(8.0)

    def test_group_cap_ignored_for_other_groups(self):
        done, _ = finish_times(
            10.0,
            [(40, None, "slow"), (40, None, None)],
            group_caps={"slow": 2.0},
        )
        assert done[0] == pytest.approx(20.0)
        # Other flow gets the remaining 8 B/s.
        assert done[1] == pytest.approx(5.0)

    def test_group_cap_not_binding_under_contention(self):
        # 16 flows, group cap 50 on a 35 B/s link: fair share (35/16)
        # is below the group's per-flow slice, so the cap is moot.
        done, link = finish_times(
            35.0,
            [(35, None, "g")] * 8 + [(35, None, None)] * 8,
            group_caps={"g": 50.0},
        )
        for i in range(16):
            assert done[i] == pytest.approx(16.0)


class TestRates:
    def test_current_rate_reflects_active_flows(self):
        env = Environment()
        link = FairShareLink(env, 10.0)
        link.transfer(100)
        link.transfer(100)
        assert link.current_rate() == pytest.approx(10.0)

    def test_active_flows_counter(self):
        env = Environment()
        link = FairShareLink(env, 10.0)
        link.transfer(100)
        assert link.active_flows == 1
        env.run()
        assert link.active_flows == 0
