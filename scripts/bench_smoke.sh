#!/bin/sh
# Sub-second kernel perf smoke; appends one record to BENCH_kernel.json.
# Usage: scripts/bench_smoke.sh [--label LABEL] [--path FILE]
set -e
cd "$(dirname "$0")/.."
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.perf.smoke "$@"
