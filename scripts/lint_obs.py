#!/usr/bin/env python
"""Observability lint: no stray output channels under ``src/repro``.

Two rules, enforced by AST walk (so docstrings and comments that merely
*mention* the forbidden calls don't trip it):

1. No ``print(...)`` calls outside ``cli.py`` -- user-facing output
   goes through ``repro.obs.log.console`` and diagnostics through
   ``repro.obs.log.get_logger``, both of which an operator can route.
2. No direct ``logging.getLogger(...)`` calls outside ``obs/log.py`` --
   loggers must come from ``get_logger`` so every one of them lives in
   the dial-able ``repro.`` namespace.
3. Files on the request path must keep their span evidence: each file
   in ``SPAN_EVIDENCE`` has to reference the named tracing hooks
   (``request_scope`` in the handlers, dispatch into the spanned
   ``serve_one`` path in the event server, span shipping in the shard
   layer).  A refactor that silently drops tracing from a request path
   fails here instead of in production.

Exit status 0 when clean, 1 with one line per violation otherwise.
Usage: ``python scripts/lint_obs.py`` (from anywhere in the repo).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Files where the rules don't apply (relative to ``src/repro``).
PRINT_ALLOWED = {"cli.py"}
GETLOGGER_ALLOWED = {"obs/log.py"}

#: Request-path files and the tracing hooks they must reference.
SPAN_EVIDENCE = {
    "nest/handlers.py": ("request_scope", "parse_trace_context"),
    "nest/eventserver.py": ("step",),
    "nest/shard.py": ("spans",),
    "client/retry.py": ("maybe_span",),
    "tier/store.py": ("maybe_span",),
    "tier/policy.py": ("span",),
    "tier/autoscale.py": ("span",),
}


def _violations(path: Path, rel: str) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Name) and func.id == "print"
                and rel not in PRINT_ALLOWED):
            out.append(
                f"{path}:{node.lineno}: bare print() -- use "
                "repro.obs.log.console() or a repro.* logger")
        if (isinstance(func, ast.Attribute) and func.attr == "getLogger"
                and isinstance(func.value, ast.Name)
                and func.value.id == "logging"
                and rel not in GETLOGGER_ALLOWED):
            out.append(
                f"{path}:{node.lineno}: naked logging.getLogger() -- use "
                "repro.obs.log.get_logger() for the repro.* namespace")
    required = SPAN_EVIDENCE.get(rel, ())
    if required:
        seen = {n.id for n in ast.walk(tree) if isinstance(n, ast.Name)}
        seen |= {n.attr for n in ast.walk(tree)
                 if isinstance(n, ast.Attribute)}
        for token in required:
            if token not in seen:
                out.append(
                    f"{path}: request path lost its tracing hook "
                    f"{token!r} (spans must survive refactors)")
    return out


def main() -> int:
    root = Path(__file__).resolve().parent.parent / "src" / "repro"
    problems: list[str] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        problems.extend(_violations(path, rel))
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"lint_obs: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
