#!/bin/sh
# Tier-1 verification gate: the observability and data-path lints,
# the full suite (fail-fast), then the fault-injection lane by itself
# so matrix failures are easy to spot, then the replica-federation
# lane (live fleets, kill-and-heal), then the durability lane
# (journal, crash sweeps, restart recovery), then the transfer lane:
# the live loopback bench in smoke mode, asserting data-path
# integrity and group-commit counters without touching the recorded
# trajectory, then the concurrency lane: the connection-scaling bench
# in smoke mode, asserting the event path serves a burst of concurrent
# connections with zero errors (again without touching the
# trajectory), then the tier lane: storage tiering + autoscaling
# (residency crash sweep, flash-crowd absorption acceptance).  Each
# faults-marked test runs under a hard per-test
# timeout (pytest-timeout when installed; SIGALRM backstop otherwise).
# Usage: scripts/verify.sh [extra pytest args]
set -e
cd "$(dirname "$0")/.."
python scripts/lint_obs.py
python scripts/lint_datapath.py
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q "$@"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q -m faults "$@"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q tests/replica "$@"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q tests/durability "$@"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q tests/tier "$@"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro perf transfer --smoke
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro perf concurrency --smoke
python scripts/check_fleet.py
