#!/bin/sh
# Tier-1 verification gate: the observability lint, the full suite
# (fail-fast), then the fault-injection lane by itself so matrix
# failures are easy to spot, then the replica-federation lane (live
# fleets, kill-and-heal), then the durability lane (journal, crash
# sweeps, restart recovery).  Each faults-marked test runs under a
# hard per-test timeout (pytest-timeout when installed; SIGALRM
# backstop otherwise).
# Usage: scripts/verify.sh [extra pytest args]
set -e
cd "$(dirname "$0")/.."
python scripts/lint_obs.py
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q "$@"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q -m faults "$@"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q tests/replica "$@"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q tests/durability "$@"
