#!/usr/bin/env python
"""Data-path lint: no unbounded stream reads under ``src/repro``.

One rule, enforced by AST walk (so docstrings and comments that merely
*mention* the call don't trip it):

No argless ``.read()`` calls.  ``stream.read()`` slurps the entire
remaining stream into one bytes object, so a single large file (or a
malicious length header) balloons resident memory -- exactly the bug
class this repo's zero-copy work removed from the GET/PUT handlers.
Data must move in bounded chunks: ``read(n)``, ``readinto(view)``, or
the pooled helpers in :mod:`repro.nest.io`.

The allowlist names the few files where a whole-file read is the
correct tool because the file is *by construction* small appliance
metadata (the journal, its snapshots), not client data.

Exit status 0 when clean, 1 with one line per violation otherwise.
Usage: ``python scripts/lint_datapath.py`` (from anywhere in the repo).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Files (relative to ``src/repro``) allowed to slurp: these read the
#: appliance's own bounded metadata files, never client data streams.
READ_ALLOWED = {
    "durability/journal.py",   # replay parses the whole journal
    "durability/manager.py",   # epoch file: a few bytes
    "durability/snapshot.py",  # compacted snapshot JSON
}


def _violations(path: Path, rel: str) -> list[str]:
    if rel in READ_ALLOWED:
        return []
    tree = ast.parse(path.read_text(), filename=str(path))
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "read"
                and not node.args and not node.keywords):
            out.append(
                f"{path}:{node.lineno}: argless .read() slurps the whole "
                "stream -- read bounded chunks (read(n)/readinto) or use "
                "repro.nest.io.copy_stream/stream_crc32")
    return out


def main() -> int:
    root = Path(__file__).resolve().parent.parent / "src" / "repro"
    problems: list[str] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        problems.extend(_violations(path, rel))
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"lint_datapath: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
