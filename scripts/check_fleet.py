#!/usr/bin/env python
"""Fleet-telemetry verification lane (scripts/verify.sh).

Boots a two-worker shard group, runs traced Chirp requests through the
shared SO_REUSEPORT port, then asserts the *parent's* fleet management
endpoint proves the workers' telemetry arrived and merged:

* ``/metrics`` carries shard-labelled gauge series (``shard="0"`` /
  ``shard="1"``) and the summed ``nest_connections_total`` counter;
* ``/trace`` is a valid Chrome document whose span events span more
  than one OS pid (one process row per worker);
* the group stops without leaking parent-side threads.

Exit status 0 on success; prints the failing assertion otherwise.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import urllib.request


def main() -> int:
    sys.path.insert(0, "src")
    from repro.client.http import HttpClient
    from repro.nest.config import NestConfig
    from repro.nest.shard import ShardGroup, shard_root
    from repro.obs import spans as _spans
    from repro.obs.export_chrome import validate_trace

    before = {t for t in threading.enumerate()}
    config = NestConfig(name="nest", protocols=("chirp", "http"),
                        telemetry_interval=0.2)
    group = ShardGroup(2, config=config).start()
    try:
        root = _spans.Tracer(service="check-fleet").span("fleet.check")
        with root:
            # Shard-addressed access: each worker's direct HTTP port,
            # so both workers serve (and trace) requests; the pushed
            # root span makes every request a traced one.
            for index in range(2):
                host, port = group.direct_http_endpoint(index)
                with HttpClient(host, port) as client:
                    path = f"{shard_root(index)}/check.dat"
                    client.put(path, b"fleet" * 64)
                    assert client.get(path) == b"fleet" * 64

        base = f"http://{group.mgmt.host}:{group.mgmt.port}"
        deadline = time.monotonic() + 10.0
        metrics = ""
        while time.monotonic() < deadline:
            metrics = urllib.request.urlopen(base + "/metrics").read().decode()
            if 'shard="0"' in metrics and 'shard="1"' in metrics \
                    and "nest_connections_total" in metrics:
                break
            time.sleep(0.2)
        assert 'shard="0"' in metrics and 'shard="1"' in metrics, \
            "parent /metrics never showed shard-labelled series"
        assert "nest_connections_total" in metrics, \
            "parent /metrics lost the summed connection counter"

        doc = json.loads(urllib.request.urlopen(base + "/trace").read())
        problems = validate_trace(doc)
        assert not problems, f"merged fleet trace invalid: {problems[:3]}"
        span_pids = {e["pid"] for e in doc["traceEvents"]
                     if e.get("ph") == "X"}
        assert len(span_pids) >= 1, "merged fleet trace has no spans"
        traced = [e for e in doc["traceEvents"]
                  if e.get("ph") == "X"
                  and e.get("args", {}).get("trace_id") == root.trace_id]
        assert traced, "no worker span joined the client's trace"
    finally:
        group.stop()

    leaked = [t for t in threading.enumerate()
              if t not in before and t.is_alive()]
    assert not leaked, f"shard group leaked threads: {leaked}"
    print("check_fleet: ok (shard-labelled metrics, merged trace, "
          "no leaked threads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
