"""Ablation -- non-work-conserving (anticipatory) stride scheduling.

The paper's section 7.2 future work: "a non-work-conserving policy in
which the idle server waits some period of time before scheduling a
competitor; such a policy might pay a slight penalty in average
response time for improved allocation control."

Asserts exactly that trade: the NFS-heavy 1:1:1:4 allocation's fairness
improves substantially while total bandwidth pays a penalty.
"""

from repro.bench import ablations


def test_ablation_anticipatory_stride(once):
    result = once(ablations.run_idleness)
    print()
    print(f"fairness  work-conserving={result.work_conserving_fairness:.3f} "
          f"anticipatory={result.anticipatory_fairness:.3f}")
    print(f"total     work-conserving={result.work_conserving_total_mbps:.1f} "
          f"anticipatory={result.anticipatory_total_mbps:.1f} MB/s")

    assert result.work_conserving_fairness < 0.97, \
        "the paper's 1:1:1:4 shortfall must exist to be repaired"
    assert (result.anticipatory_fairness
            > result.work_conserving_fairness + 0.02), "idling improves control"
    assert (result.anticipatory_total_mbps
            <= result.work_conserving_total_mbps), "and it costs bandwidth"
