"""Ablation -- cache-aware scheduling vs FIFO (paper section 4.2).

Cache-aware scheduling approximates shortest-job-first by serving
cache-resident requests before disk-bound ones.  Asserts the paper's
claims: mean client response time improves (strongly for the cached
requests themselves) and server throughput does not regress.
"""

from repro.bench import ablations


def test_ablation_cache_aware(once):
    result = once(ablations.run_cache_aware)
    print()
    print(f"mean response   fifo={result.fifo_mean_response:.2f}s "
          f"cache-aware={result.cache_aware_mean_response:.2f}s")
    print(f"cached-only     fifo={result.fifo_cached_response:.2f}s "
          f"cache-aware={result.cache_aware_cached_response:.2f}s")
    print(f"throughput      fifo={result.fifo_throughput_mbps:.1f} "
          f"cache-aware={result.cache_aware_throughput_mbps:.1f} MB/s")

    assert (result.cache_aware_mean_response
            < 0.7 * result.fifo_mean_response), "SJF-like response win"
    assert (result.cache_aware_cached_response
            < 0.4 * result.fifo_cached_response), "cached requests fly"
    assert (result.cache_aware_throughput_mbps
            > 0.9 * result.fifo_throughput_mbps), "no throughput regression"
