"""Figure 5 -- Adaptive Concurrency.

Regenerates both panels and asserts:

* Solaris / 1 KB in-cache: events beat threads on latency; the adaptive
  scheme lands between the two (the visible cost of adaptation);
* Linux / 10 MB disk-bound: threads beat events on bandwidth; the
  adaptive scheme comes close to the best model.
"""

from repro.bench import fig5


def test_fig5_adaptive_concurrency(once):
    result = once(fig5.run)
    print()
    print(fig5.report(result))

    # Left panel: latency ordering events < adaptive < threads.
    ev = result.solaris_1kb["events"].avg_latency_ms
    th = result.solaris_1kb["threads"].avg_latency_ms
    ad = result.solaris_1kb["adaptive"].avg_latency_ms
    assert ev < th, "events must win on small cached requests"
    assert th > 1.5 * ev, "the gap should be substantial"
    assert ev < ad < th, "adaptive lands between the two"

    # Right panel: bandwidth ordering events < adaptive <= threads.
    ev_bw = result.linux_10mb["events"].bandwidth_mbps
    th_bw = result.linux_10mb["threads"].bandwidth_mbps
    ad_bw = result.linux_10mb["adaptive"].bandwidth_mbps
    assert th_bw > 1.3 * ev_bw, "threads must win on disk-bound requests"
    assert ad_bw > 0.6 * th_bw, "adaptive comes close to the best model"
    assert ad_bw < th_bw, "but pays a visible adaptation cost"
    # The adaptive scheme sampled both models (the cost's origin).
    mix = result.linux_10mb["adaptive"].model_mix
    assert mix.get("threads", 0) > 0 and mix.get("events", 0) > 0
