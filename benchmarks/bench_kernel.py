"""Kernel microbenchmark: events/second through the hot dispatch loop.

Unlike the figure benches, this one exercises the kernel alone --
timeout chains (the pooled fast path), shared-event fan-out,
already-fired yields (the direct-resume path), interrupts, and one
fair-share link -- so its events/second is a clean signal of kernel
speed, uncontaminated by the server stack.

The default case is quick; the scaled-up case is marked ``slow_bench``
(deselect with ``-m 'not slow_bench'``).
"""

import pytest

from repro.perf.bench import run_kernel_bench


def test_kernel_microbench(once):
    record = once(run_kernel_bench)
    print()
    print(f"{record['events_per_second']:,} events/s, "
          f"pool hit rate {record['counters']['pool_hit_rate']:.1%}")
    counters = record["counters"]
    # The fast paths must actually engage on this mix.
    assert counters["timeouts_reused"] > counters["timeouts_created"]
    assert counters["direct_resumes"] > 0
    assert counters["heap_peak"] > 0


@pytest.mark.slow_bench
def test_kernel_microbench_scaled(once):
    record = once(run_kernel_bench, n_processes=1000, steps=100)
    print()
    print(f"{record['events_per_second']:,} events/s at 1000 processes")
    assert record["counters"]["pool_hit_rate"] > 0.5
