"""Shared helpers for the benchmark harness.

Each figure's workload is deterministic and takes seconds-to-minutes of
wall clock, so every bench runs exactly once (``rounds=1``) -- the
interesting output is the regenerated figure, not the harness's own
timing jitter.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a figure generator exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
