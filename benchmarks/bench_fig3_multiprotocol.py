"""Figure 3 -- Multiple Protocols: NeST vs native servers.

Regenerates every bar and asserts the paper's shape claims:

* Chirp/HTTP/FTP deliver the network peak; GridFTP and NFS roughly half;
* NeST tracks each native server closely (within 10 %);
* mixed totals are similar for NeST and JBOS, but NFS is disfavoured
  under NeST's FIFO transfer manager.
"""

from repro.bench import fig3


def test_fig3_multiple_protocols(once):
    result = once(fig3.run)
    print()
    print(fig3.report(result))

    peak = result.single_nest["chirp"]
    assert peak > 25.0, "Chirp should approach the delivered network peak"
    for fast in ("chirp", "http", "ftp"):
        assert result.single_nest[fast] > 0.85 * peak
    # GridFTP and NFS at roughly half the peak.
    assert 0.3 * peak < result.single_nest["gridftp"] < 0.65 * peak
    assert 0.3 * peak < result.single_nest["nfs"] < 0.65 * peak
    # NeST within 10% of each native server.
    for proto in fig3.SINGLE_PROTOCOLS:
        nest = result.single_nest[proto]
        native = result.single_native[proto]
        assert abs(nest - native) / native < 0.10, proto
    # Mixed workload: similar totals...
    assert abs(result.mixed_nest_total - result.mixed_jbos_total) < 0.15 * peak
    assert result.mixed_nest_total > 0.8 * peak
    # ...but NFS gets far less under NeST's FIFO than under JBOS.
    assert result.mixed_nest["nfs"] < 0.5 * result.mixed_jbos["nfs"]
