"""Figure 6 -- Performance Overhead of Lots.

Regenerates the quota-enabled/disabled write-bandwidth series and
asserts:

* the cost is negligible for small (20 MB) writes;
* it grows quickly with write size;
* the worst case approaches a 50 % bandwidth loss;
* read performance is unaffected (the paper's aside).
"""

from repro.bench import fig6
from repro.models.filesystem import FileSystemModel
from repro.models.platform import LINUX
from repro.sim.core import Environment


def test_fig6_lot_overhead(once):
    result = once(fig6.run)
    print()
    print(fig6.report(result))

    smallest = min(result.sizes_mb)
    ratio_small = result.enabled_mbps[smallest] / result.disabled_mbps[smallest]
    assert ratio_small > 0.95, "small writes should see negligible cost"

    ratios = [result.enabled_mbps[s] / result.disabled_mbps[s]
              for s in result.sizes_mb]
    # Monotone non-increasing cost curve (within numeric slack).
    for earlier, later in zip(ratios, ratios[1:]):
        assert later <= earlier + 0.02

    assert 0.4 < result.worst_case_ratio() < 0.6, \
        "worst case is roughly a 50% write penalty"


def test_fig6_reads_unaffected(benchmark):
    """'read performance is unaffected (not surprisingly)'."""

    def read_bw(quotas: bool) -> float:
        env = Environment()
        fs = FileSystemModel(env, LINUX, quotas_enabled=quotas)
        fs.create("/f", "u")
        fs.files["/f"].size = 100 * 1_000_000

        def reader():
            offset = 0
            while offset < fs.files["/f"].size:
                yield from fs.read("/f", offset, 1 << 20)
                offset += 1 << 20

        proc = env.process(reader())
        env.run(proc)
        return fs.files["/f"].size / env.now

    results = benchmark.pedantic(
        lambda: (read_bw(False), read_bw(True)),
        rounds=1, iterations=1,
    )
    disabled, enabled = results
    assert abs(disabled - enabled) / disabled < 0.01
