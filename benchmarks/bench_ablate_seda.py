"""Ablation -- SEDA-style staged concurrency (paper §4.1 future work).

"In the future we plan to investigate more advanced concurrency
architectures (e.g., SEDA and Crovella's experimental server)."

Under mixed overload (hundreds of small cached requests + a few
disk-bound streams):

* thread-per-request pays growing scheduling/memory costs with the
  thread population;
* the event loop's small-request latency is poisoned by disk reads
  blocking the loop (and total bandwidth suffers);
* the staged design routes cache hits down a fast path and admits
  disk-bound work through a bounded stage -- best on both metrics.
"""

from repro.bench import ablations


def test_ablation_seda_overload(once):
    result = once(ablations.run_seda_overload)
    print()
    for model in ("threads", "events", "seda"):
        print(f"  {model:<8} bw={result.bandwidth_mbps[model]:6.2f} MB/s  "
              f"small-req={result.small_latency_ms[model]:7.2f} ms")

    bw = result.bandwidth_mbps
    lat = result.small_latency_ms
    # Events lose bandwidth to loop serialization...
    assert bw["events"] < 0.7 * bw["threads"]
    # ...and poison small-request latency with blocking disk reads.
    assert lat["events"] > 1.5 * lat["seda"]
    # SEDA matches threads on bandwidth and beats them on latency
    # (thread-per-request pays overload costs per small request).
    assert bw["seda"] > 0.95 * bw["threads"]
    assert lat["seda"] < lat["threads"]
