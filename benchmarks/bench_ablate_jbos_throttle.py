"""Ablation -- JBOS plus Apache-style per-server throttling.

The paper (section 4.2) compares NeST's proportional-share scheduler to
Apache's Bandwidth/Request Throttling module: throttling "only applies
to the HTTP requests the Apache server processes, and thus cannot be
applied to other traffic streams in a JBOS environment."

Asserts that capping the HTTP server redistributes bandwidth to the
other whole-file protocols by TCP's choice, not an administrator's: the
latency-bound NFS server gains essentially nothing.
"""

from repro.bench import ablations


def test_ablation_jbos_throttle(once):
    result = once(ablations.run_throttle)
    print()
    print(f"unthrottled: { {k: round(v, 1) for k, v in result.unthrottled.items()} }")
    print(f"throttled:   { {k: round(v, 1) for k, v in result.throttled.items()} }")

    # The throttle does bind HTTP...
    assert result.throttled["http"] < result.unthrottled["http"]
    # ...the freed bandwidth flows to the other whole-file protocols...
    gain_whole_file = (
        (result.throttled["chirp"] - result.unthrottled["chirp"])
        + (result.throttled["gridftp"] - result.unthrottled["gridftp"])
    )
    assert gain_whole_file > 0
    # ...and NFS (which an admin might have wanted to boost) gets
    # essentially none of it -- unlike NeST's cross-protocol stride.
    assert result.nfs_gain_mbps < 0.3 * gain_whole_file
