"""Figure 4 -- Proportional Protocol Scheduling.

Regenerates the stride-scheduler bars and asserts:

* the proportional-share scheduler costs total bandwidth vs FIFO;
* Jain's fairness > 0.98 for 1:1:1:1, 1:2:1:1, 3:1:2:1;
* the NFS-heavy 1:1:1:4 ratio falls visibly short (paper: 0.87).
"""

from repro.bench import fig4


def test_fig4_proportional_scheduling(once):
    result = once(fig4.run)
    print()
    print(fig4.report(result))

    fifo = result.row("FIFO")
    assert fifo.total_mbps > 30.0

    for label in ("1:1:1:1", "1:2:1:1", "3:1:2:1"):
        row = result.row(label)
        # Proportional sharing costs total bandwidth...
        assert row.total_mbps < 0.95 * fifo.total_mbps, label
        assert row.total_mbps > 0.6 * fifo.total_mbps, label
        # ...but hits the requested ratios almost exactly.
        assert row.fairness > 0.98, label

    nfs_heavy = result.row("1:1:1:4")
    assert nfs_heavy.fairness < 0.97, "NFS cannot fill a 4x allocation"
    # The shortfall is NFS-specific: it delivers less than desired.
    assert (nfs_heavy.per_protocol_mbps["nfs"]
            < 0.85 * nfs_heavy.desired_mbps["nfs"])
