"""Ablation -- per-user proportional shares.

The paper's §4.2 extension: "in the future, we plan to extend this to
provide preferences on a per-user basis."  Two user populations hit the
server over the *same* protocol, so per-protocol shares are blind; the
user-keyed stride scheduler still delivers the requested 3:1 split.
"""

from repro.bench import ablations


def test_ablation_user_shares(once):
    result = once(ablations.run_user_shares)
    print()
    print(f"vip={result.vip_mbps:.1f} MB/s  guest={result.guest_mbps:.1f} MB/s"
          f"  achieved={result.achieved_ratio:.2f} (requested "
          f"{result.requested_ratio})")

    assert result.vip_mbps > result.guest_mbps
    assert 2.2 < result.achieved_ratio < 4.2, \
        "the 3:1 user split should be roughly honoured"
