"""Ablation -- quota-backed vs NeST-managed lot enforcement.

The paper's section 7.4 question: is the additional complexity of
NeST-managed enforcement "worth the performance improvement and the
ability to distinguish lots correctly"?  Asserts both halves:

* NeST-managed accounting avoids the kernel quota write penalty;
* quota mode reproduces the overfill caveat ("a user may overfill a
  single lot and then not be able to fill another lot to capacity"),
  which NeST-managed mode fixes.
"""

from repro.bench import ablations


def test_ablation_lot_enforcement(once):
    result = once(ablations.run_enforcement)
    print()
    print(f"200MB write  quota={result.quota_write_mbps:.1f} "
          f"nest-managed={result.nest_write_mbps:.1f} MB/s")
    print(f"overfill allowed?  quota={result.quota_allows_overfill} "
          f"nest={result.nest_allows_overfill}")

    assert result.nest_write_mbps > 1.5 * result.quota_write_mbps, \
        "NeST-managed enforcement skips the quota I/O penalty"
    assert result.quota_allows_overfill, "quota mode cannot distinguish lots"
    assert not result.nest_allows_overfill, "NeST-managed mode can"
